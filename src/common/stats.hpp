#pragma once
// Streaming and batch statistics used throughout the simulators: packet
// latency accumulation, utilization summaries, benchmark result tables.

#include <cstddef>
#include <cstdint>
#include <span>
#include <string>
#include <vector>

namespace vfimr {

/// Streaming accumulator (Welford) — numerically stable mean/variance plus
/// min/max/sum without storing samples.
class Accumulator {
 public:
  void add(double x);
  void add_n(double x, std::uint64_t n);

  std::uint64_t count() const { return n_; }
  bool empty() const { return n_ == 0; }
  double sum() const { return sum_; }
  double mean() const { return n_ ? mean_ : 0.0; }
  /// Population variance; 0 for fewer than 2 samples.
  double variance() const;
  double stddev() const;
  double min() const { return n_ ? min_ : 0.0; }
  double max() const { return n_ ? max_ : 0.0; }

  /// Merge another accumulator into this one (parallel reduction).
  void merge(const Accumulator& other);

  /// Exact internal state, for canonical serialization (store/codec.hpp).
  /// raw()/from_raw() round-trip bit-identically: derived figures like
  /// variance() would not (m2 = variance * n re-rounds), so the store
  /// persists the raw fields instead.
  struct Raw {
    std::uint64_t n = 0;
    double mean = 0.0;
    double m2 = 0.0;
    double sum = 0.0;
    double min = 0.0;
    double max = 0.0;
  };
  Raw raw() const { return Raw{n_, mean_, m2_, sum_, min_, max_}; }
  static Accumulator from_raw(const Raw& r) {
    Accumulator a;
    a.n_ = r.n;
    a.mean_ = r.mean;
    a.m2_ = r.m2;
    a.sum_ = r.sum;
    a.min_ = r.min;
    a.max_ = r.max;
    return a;
  }

 private:
  std::uint64_t n_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double sum_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
};

/// Batch helpers over sample vectors.
double mean(std::span<const double> xs);
double stddev(std::span<const double> xs);
double median(std::vector<double> xs);           // by-value: sorts a copy
double percentile(std::vector<double> xs, double p);  // p in [0,100]
double sum(std::span<const double> xs);
double min_of(std::span<const double> xs);
double max_of(std::span<const double> xs);

/// Geometric mean; all inputs must be > 0.
double geomean(std::span<const double> xs);

/// Coefficient of variation (stddev / mean); 0 when mean is 0.
double coeff_variation(std::span<const double> xs);

/// Fixed-width histogram over [lo, hi) with `bins` buckets.  Out-of-range
/// samples are clamped into the first/last bucket.  Construction requires
/// bins >= 1 and hi > lo (RequirementError otherwise).
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t bins);
  /// Rebuild from per-bucket counts (telemetry snapshots, shard merges).
  /// `sum` is the exact sample sum when the caller tracked it.
  Histogram(double lo, double hi, std::vector<std::uint64_t> counts,
            double sum = 0.0);

  void add(double x);
  std::uint64_t count() const { return total_; }
  std::size_t bins() const { return counts_.size(); }
  std::uint64_t bucket(std::size_t i) const { return counts_.at(i); }
  double bucket_lo(std::size_t i) const;
  double bucket_hi(std::size_t i) const;
  double lo() const { return lo_; }
  double hi() const { return hi_; }
  double sum() const { return sum_; }
  /// Exact sample mean (sum / count); 0 when empty.
  double mean() const;

  /// Fold another histogram into this one; requires identical [lo, hi) and
  /// bin count (throws std::invalid_argument otherwise).  Used to reduce
  /// per-shard histograms collected under parallel_for.
  void merge(const Histogram& other);

  /// Quantile estimate for p in [0, 1], linearly interpolated inside the
  /// containing bucket.  Exact to within one bucket width for in-range
  /// samples; 0 when empty.
  double quantile(double p) const;

  /// Render a compact textual summary ("[0.0,0.1): ####  12" style).
  std::string to_string() const;

 private:
  double lo_;
  double hi_;
  std::vector<std::uint64_t> counts_;
  std::uint64_t total_ = 0;
  double sum_ = 0.0;
};

/// P² streaming quantile estimator (Jain & Chlamtac, CACM 1985): tracks a
/// single quantile in O(1) memory with five markers adjusted by parabolic
/// interpolation.  Exact for fewer than five samples.  Complements
/// Histogram::quantile when the sample range is not known up front.
class P2Quantile {
 public:
  explicit P2Quantile(double p);  // p in (0, 1)

  void add(double x);
  /// Current quantile estimate; NaN before the first sample (an empty
  /// sampler has no quantile — check count() or std::isnan before printing).
  double value() const;
  std::uint64_t count() const { return n_; }
  double p() const { return p_; }

 private:
  double p_;
  std::uint64_t n_ = 0;
  double q_[5] = {};        // marker heights
  double pos_[5] = {};      // actual marker positions (1-based)
  double desired_[5] = {};  // desired marker positions
  double dpos_[5] = {};     // desired-position increments per sample
};

}  // namespace vfimr
