#include "common/rng.hpp"

#include <cmath>

namespace vfimr {

double Rng::normal() {
  if (has_spare_) {
    has_spare_ = false;
    return spare_;
  }
  double u = 0.0;
  double v = 0.0;
  double s = 0.0;
  do {
    u = uniform(-1.0, 1.0);
    v = uniform(-1.0, 1.0);
    s = u * u + v * v;
  } while (s >= 1.0 || s == 0.0);
  const double factor = std::sqrt(-2.0 * std::log(s) / s);
  spare_ = v * factor;
  has_spare_ = true;
  return u * factor;
}

double Rng::exponential(double rate) {
  // Inverse-CDF; uniform() < 1 so log argument is in (0, 1].
  return -std::log(1.0 - uniform()) / rate;
}

std::size_t Rng::weighted_index(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) total += w > 0.0 ? w : 0.0;
  if (total <= 0.0) {
    return weights.empty() ? 0 : static_cast<std::size_t>(
                                     uniform_u64(weights.size()));
  }
  double r = uniform() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    const double w = weights[i] > 0.0 ? weights[i] : 0.0;
    if (r < w) return i;
    r -= w;
  }
  return weights.size() - 1;
}

}  // namespace vfimr
