#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <sstream>
#include <stdexcept>

#include "common/require.hpp"

namespace vfimr {

void Accumulator::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::add_n(double x, std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) add(x);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile p out of range");
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double sum(std::span<const double> xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return s;
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::invalid_argument("geomean requires positive samples");
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

double coeff_variation(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / m;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, counts_(bins, 0) {
  // Every bucket helper (bucket_lo, add, to_string) divides by the bucket
  // count, so a zero-bucket histogram must never be constructible.
  VFIMR_REQUIRE_MSG(bins >= 1, "Histogram needs >= 1 bucket, got " << bins);
  VFIMR_REQUIRE_MSG(hi > lo, "Histogram needs hi > lo, got [" << lo << ", "
                                                              << hi << ")");
}

Histogram::Histogram(double lo, double hi, std::vector<std::uint64_t> counts,
                     double sum)
    : lo_{lo}, hi_{hi}, counts_{std::move(counts)}, sum_{sum} {
  VFIMR_REQUIRE_MSG(!counts_.empty(), "Histogram needs >= 1 bucket");
  VFIMR_REQUIRE_MSG(hi > lo, "Histogram needs hi > lo, got [" << lo << ", "
                                                              << hi << ")");
  for (auto c : counts_) total_ += c;
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::int64_t>(frac * static_cast<double>(counts_.size()));
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
  sum_ += x;
}

double Histogram::mean() const {
  return total_ ? sum_ / static_cast<double>(total_) : 0.0;
}

void Histogram::merge(const Histogram& other) {
  if (lo_ != other.lo_ || hi_ != other.hi_ ||
      counts_.size() != other.counts_.size()) {
    throw std::invalid_argument("Histogram::merge requires identical binning");
  }
  for (std::size_t i = 0; i < counts_.size(); ++i) counts_[i] += other.counts_[i];
  total_ += other.total_;
  sum_ += other.sum_;
}

double Histogram::quantile(double p) const {
  if (p < 0.0 || p > 1.0) throw std::invalid_argument("quantile p out of range");
  if (total_ == 0) return 0.0;
  // Target rank in [0, total]; walk the cumulative counts and interpolate
  // linearly inside the bucket that crosses it.
  const double target = p * static_cast<double>(total_);
  std::uint64_t cum = 0;
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    if (counts_[i] == 0) continue;
    const double before = static_cast<double>(cum);
    cum += counts_[i];
    if (static_cast<double>(cum) >= target) {
      const double frac =
          std::clamp((target - before) / static_cast<double>(counts_[i]), 0.0, 1.0);
      return bucket_lo(i) + frac * (bucket_hi(i) - bucket_lo(i));
    }
  }
  return bucket_hi(counts_.size() - 1);
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i + 1); }

P2Quantile::P2Quantile(double p) : p_{p} {
  if (!(p > 0.0 && p < 1.0)) {
    throw std::invalid_argument("P2Quantile needs p in (0, 1)");
  }
  dpos_[0] = 0.0;
  dpos_[1] = p / 2.0;
  dpos_[2] = p;
  dpos_[3] = (1.0 + p) / 2.0;
  dpos_[4] = 1.0;
}

void P2Quantile::add(double x) {
  if (n_ < 5) {
    q_[n_++] = x;
    if (n_ == 5) {
      std::sort(q_, q_ + 5);
      for (int i = 0; i < 5; ++i) pos_[i] = static_cast<double>(i + 1);
      desired_[0] = 1.0;
      desired_[1] = 1.0 + 2.0 * p_;
      desired_[2] = 1.0 + 4.0 * p_;
      desired_[3] = 3.0 + 2.0 * p_;
      desired_[4] = 5.0;
    }
    return;
  }
  ++n_;

  // Locate the cell containing x, extending the extreme markers if needed.
  int k;
  if (x < q_[0]) {
    q_[0] = x;
    k = 0;
  } else if (x >= q_[4]) {
    q_[4] = x;
    k = 3;
  } else {
    k = 0;
    while (k < 3 && x >= q_[k + 1]) ++k;
  }
  for (int i = k + 1; i < 5; ++i) pos_[i] += 1.0;
  for (int i = 0; i < 5; ++i) desired_[i] += dpos_[i];

  // Adjust interior markers toward their desired positions.
  for (int i = 1; i <= 3; ++i) {
    const double d = desired_[i] - pos_[i];
    if ((d >= 1.0 && pos_[i + 1] - pos_[i] > 1.0) ||
        (d <= -1.0 && pos_[i - 1] - pos_[i] < -1.0)) {
      const double s = d >= 0.0 ? 1.0 : -1.0;
      // Piecewise-parabolic prediction; fall back to linear when it would
      // break marker monotonicity.
      const double np = pos_[i] + s;
      const double parabolic =
          q_[i] + s / (pos_[i + 1] - pos_[i - 1]) *
                      ((pos_[i] - pos_[i - 1] + s) * (q_[i + 1] - q_[i]) /
                           (pos_[i + 1] - pos_[i]) +
                       (pos_[i + 1] - pos_[i] - s) * (q_[i] - q_[i - 1]) /
                           (pos_[i] - pos_[i - 1]));
      if (q_[i - 1] < parabolic && parabolic < q_[i + 1]) {
        q_[i] = parabolic;
      } else {
        const int j = s > 0.0 ? i + 1 : i - 1;
        q_[i] += s * (q_[j] - q_[i]) / (pos_[j] - pos_[i]);
      }
      pos_[i] = np;
    }
  }
}

double P2Quantile::value() const {
  // NaN, not 0.0: an empty sampler has no quantile, and callers that print
  // SLA percentiles must be able to tell "no samples" from a true zero.
  if (n_ == 0) return std::numeric_limits<double>::quiet_NaN();
  if (n_ >= 5) return q_[2];
  // Exact small-sample quantile over the stored observations.
  std::vector<double> xs(q_, q_ + n_);
  return percentile(std::move(xs), p_ * 100.0);
}

std::string Histogram::to_string() const {
  std::ostringstream os;
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    os << "[" << bucket_lo(i) << "," << bucket_hi(i) << "): ";
    const auto bar = static_cast<std::size_t>(
        40.0 * static_cast<double>(counts_[i]) / static_cast<double>(peak));
    os << std::string(bar, '#') << "  " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace vfimr
