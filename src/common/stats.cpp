#include "common/stats.hpp"

#include <algorithm>
#include <cmath>
#include <sstream>
#include <stdexcept>

namespace vfimr {

void Accumulator::add(double x) {
  ++n_;
  sum_ += x;
  if (n_ == 1) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(n_);
  m2_ += delta * (x - mean_);
}

void Accumulator::add_n(double x, std::uint64_t n) {
  for (std::uint64_t i = 0; i < n; ++i) add(x);
}

double Accumulator::variance() const {
  if (n_ < 2) return 0.0;
  return m2_ / static_cast<double>(n_);
}

double Accumulator::stddev() const { return std::sqrt(variance()); }

void Accumulator::merge(const Accumulator& other) {
  if (other.n_ == 0) return;
  if (n_ == 0) {
    *this = other;
    return;
  }
  const double delta = other.mean_ - mean_;
  const auto na = static_cast<double>(n_);
  const auto nb = static_cast<double>(other.n_);
  const double nt = na + nb;
  mean_ += delta * nb / nt;
  m2_ += other.m2_ + delta * delta * na * nb / nt;
  n_ += other.n_;
  sum_ += other.sum_;
  min_ = std::min(min_, other.min_);
  max_ = std::max(max_, other.max_);
}

double mean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double s = 0.0;
  for (double x : xs) s += x;
  return s / static_cast<double>(xs.size());
}

double stddev(std::span<const double> xs) {
  if (xs.size() < 2) return 0.0;
  const double m = mean(xs);
  double s = 0.0;
  for (double x : xs) s += (x - m) * (x - m);
  return std::sqrt(s / static_cast<double>(xs.size()));
}

double median(std::vector<double> xs) { return percentile(std::move(xs), 50.0); }

double percentile(std::vector<double> xs, double p) {
  if (xs.empty()) return 0.0;
  if (p < 0.0 || p > 100.0) throw std::invalid_argument("percentile p out of range");
  std::sort(xs.begin(), xs.end());
  const double rank = p / 100.0 * static_cast<double>(xs.size() - 1);
  const auto lo = static_cast<std::size_t>(rank);
  const std::size_t hi = std::min(lo + 1, xs.size() - 1);
  const double frac = rank - static_cast<double>(lo);
  return xs[lo] * (1.0 - frac) + xs[hi] * frac;
}

double sum(std::span<const double> xs) {
  double s = 0.0;
  for (double x : xs) s += x;
  return s;
}

double min_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::min_element(xs.begin(), xs.end());
}

double max_of(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  return *std::max_element(xs.begin(), xs.end());
}

double geomean(std::span<const double> xs) {
  if (xs.empty()) return 0.0;
  double acc = 0.0;
  for (double x : xs) {
    if (x <= 0.0) throw std::invalid_argument("geomean requires positive samples");
    acc += std::log(x);
  }
  return std::exp(acc / static_cast<double>(xs.size()));
}

double coeff_variation(std::span<const double> xs) {
  const double m = mean(xs);
  if (m == 0.0) return 0.0;
  return stddev(xs) / m;
}

Histogram::Histogram(double lo, double hi, std::size_t bins)
    : lo_{lo}, hi_{hi}, counts_(bins, 0) {
  if (bins == 0) throw std::invalid_argument("Histogram needs >= 1 bin");
  if (!(hi > lo)) throw std::invalid_argument("Histogram needs hi > lo");
}

void Histogram::add(double x) {
  const double frac = (x - lo_) / (hi_ - lo_);
  auto idx = static_cast<std::int64_t>(frac * static_cast<double>(counts_.size()));
  idx = std::clamp<std::int64_t>(idx, 0,
                                 static_cast<std::int64_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::bucket_lo(std::size_t i) const {
  return lo_ + (hi_ - lo_) * static_cast<double>(i) /
                   static_cast<double>(counts_.size());
}

double Histogram::bucket_hi(std::size_t i) const { return bucket_lo(i + 1); }

std::string Histogram::to_string() const {
  std::ostringstream os;
  std::uint64_t peak = 1;
  for (auto c : counts_) peak = std::max(peak, c);
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    os << "[" << bucket_lo(i) << "," << bucket_hi(i) << "): ";
    const auto bar = static_cast<std::size_t>(
        40.0 * static_cast<double>(counts_[i]) / static_cast<double>(peak));
    os << std::string(bar, '#') << "  " << counts_[i] << "\n";
  }
  return os.str();
}

}  // namespace vfimr
