#include "common/json_lite.hpp"

#include <cctype>
#include <fstream>
#include <iomanip>
#include <limits>
#include <sstream>
#include <stdexcept>

namespace vfimr::json {

namespace {

[[noreturn]] void fail(const std::string& what, std::size_t pos) {
  throw std::runtime_error("json_lite: " + what + " at offset " +
                           std::to_string(pos));
}

void skip_ws(const std::string& s, std::size_t& i) {
  while (i < s.size() && std::isspace(static_cast<unsigned char>(s[i]))) ++i;
}

/// Parses a double-quoted key.  Goldens use plain metric-name keys, so only
/// backslash escapes for '"' and '\\' are honoured.
std::string parse_key(const std::string& s, std::size_t& i) {
  if (i >= s.size() || s[i] != '"') fail("expected '\"'", i);
  ++i;
  std::string out;
  while (i < s.size() && s[i] != '"') {
    if (s[i] == '\\') {
      ++i;
      if (i >= s.size() || (s[i] != '"' && s[i] != '\\')) {
        fail("unsupported escape", i);
      }
    }
    out.push_back(s[i]);
    ++i;
  }
  if (i >= s.size()) fail("unterminated string", i);
  ++i;  // closing quote
  return out;
}

double parse_number(const std::string& s, std::size_t& i) {
  const std::size_t start = i;
  while (i < s.size() &&
         (std::isdigit(static_cast<unsigned char>(s[i])) || s[i] == '-' ||
          s[i] == '+' || s[i] == '.' || s[i] == 'e' || s[i] == 'E')) {
    ++i;
  }
  if (i == start) fail("expected number", i);
  std::size_t consumed = 0;
  double v = 0.0;
  try {
    v = std::stod(s.substr(start, i - start), &consumed);
  } catch (const std::exception&) {
    fail("malformed number", start);
  }
  if (consumed != i - start) fail("malformed number", start);
  return v;
}

}  // namespace

std::string dump(const MetricMap& metrics) {
  std::ostringstream os;
  os << "{";
  bool first = true;
  for (const auto& [key, value] : metrics) {
    os << (first ? "\n" : ",\n");
    first = false;
    os << "  \"" << key << "\": "
       << std::setprecision(std::numeric_limits<double>::max_digits10)
       << value;
  }
  os << (first ? "}" : "\n}") << "\n";
  return os.str();
}

MetricMap parse(const std::string& text) {
  MetricMap out;
  std::size_t i = 0;
  skip_ws(text, i);
  if (i >= text.size()) fail("empty input (truncated file?)", i);
  if (text[i] != '{') fail("expected '{'", i);
  ++i;
  skip_ws(text, i);
  if (i < text.size() && text[i] == '}') {
    ++i;
  } else {
    while (true) {
      skip_ws(text, i);
      const std::string key = parse_key(text, i);
      skip_ws(text, i);
      if (i >= text.size() || text[i] != ':') fail("expected ':'", i);
      ++i;
      skip_ws(text, i);
      if (!out.emplace(key, parse_number(text, i)).second) {
        fail("duplicate key \"" + key + "\"", i);
      }
      skip_ws(text, i);
      if (i < text.size() && text[i] == ',') {
        ++i;
        continue;
      }
      if (i < text.size() && text[i] == '}') {
        ++i;
        break;
      }
      fail("expected ',' or '}'", i);
    }
  }
  skip_ws(text, i);
  if (i != text.size()) fail("trailing content", i);
  return out;
}

MetricMap load_file(const std::string& path) {
  std::ifstream in{path};
  if (!in) throw std::runtime_error("json_lite: cannot open " + path);
  std::ostringstream buf;
  buf << in.rdbuf();
  try {
    return parse(buf.str());
  } catch (const std::exception& e) {
    throw std::runtime_error(std::string{e.what()} + " in " + path);
  }
}

void save_file(const std::string& path, const MetricMap& metrics) {
  std::ofstream out{path};
  if (!out) throw std::runtime_error("json_lite: cannot open " + path);
  out << dump(metrics);
  if (!out) throw std::runtime_error("json_lite: write failed for " + path);
}

}  // namespace vfimr::json
