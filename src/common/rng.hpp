#pragma once
// Deterministic pseudo-random number generation for all simulators in this
// repository.  Every stochastic component (traffic injection, simulated
// annealing, workload synthesis) takes an explicit Rng so that experiments
// are reproducible bit-for-bit across runs and platforms.

#include <cstdint>
#include <limits>
#include <vector>

namespace vfimr {

/// SplitMix64: used to seed the main generator from a single 64-bit seed.
/// Reference: Steele, Lea, Flood — "Fast Splittable Pseudorandom Number
/// Generators", OOPSLA 2014.
class SplitMix64 {
 public:
  explicit SplitMix64(std::uint64_t seed) : state_{seed} {}

  std::uint64_t next() {
    std::uint64_t z = (state_ += 0x9e3779b97f4a7c15ULL);
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
    return z ^ (z >> 31);
  }

 private:
  std::uint64_t state_;
};

/// xoshiro256** 1.0 (Blackman & Vigna) — the repository-wide generator.
/// Satisfies the C++ UniformRandomBitGenerator concept so it can also be
/// plugged into <random> distributions when convenient.
class Rng {
 public:
  using result_type = std::uint64_t;

  explicit Rng(std::uint64_t seed = 0x5eedULL) { reseed(seed); }

  void reseed(std::uint64_t seed) {
    SplitMix64 sm{seed};
    for (auto& s : s_) s = sm.next();
  }

  static constexpr result_type min() { return 0; }
  static constexpr result_type max() {
    return std::numeric_limits<result_type>::max();
  }

  result_type operator()() { return next_u64(); }

  std::uint64_t next_u64() {
    const std::uint64_t result = rotl(s_[1] * 5, 7) * 9;
    const std::uint64_t t = s_[1] << 17;
    s_[2] ^= s_[0];
    s_[3] ^= s_[1];
    s_[1] ^= s_[2];
    s_[0] ^= s_[3];
    s_[2] ^= t;
    s_[3] = rotl(s_[3], 45);
    return result;
  }

  /// Uniform double in [0, 1).
  double uniform() {
    return static_cast<double>(next_u64() >> 11) * 0x1.0p-53;
  }

  /// Uniform double in [lo, hi).
  double uniform(double lo, double hi) { return lo + (hi - lo) * uniform(); }

  /// Uniform integer in [0, n).  n must be > 0.
  std::uint64_t uniform_u64(std::uint64_t n) {
    // Lemire's nearly-divisionless bounded generation.
    __uint128_t m = static_cast<__uint128_t>(next_u64()) * n;
    auto lo = static_cast<std::uint64_t>(m);
    if (lo < n) {
      const std::uint64_t threshold = (0 - n) % n;
      while (lo < threshold) {
        m = static_cast<__uint128_t>(next_u64()) * n;
        lo = static_cast<std::uint64_t>(m);
      }
    }
    return static_cast<std::uint64_t>(m >> 64);
  }

  /// Uniform integer in [lo, hi] inclusive.
  int uniform_int(int lo, int hi) {
    return lo + static_cast<int>(
                    uniform_u64(static_cast<std::uint64_t>(hi - lo) + 1));
  }

  /// Standard normal via Marsaglia polar method (deterministic, no <random>).
  double normal();

  /// Normal with given mean / standard deviation.
  double normal(double mean, double stddev) { return mean + stddev * normal(); }

  /// True with probability p.
  bool bernoulli(double p) { return uniform() < p; }

  /// Exponentially distributed value with the given rate (mean 1/rate).
  double exponential(double rate);

  /// Sample an index in [0, weights.size()) proportionally to weights.
  /// Zero-total weight falls back to uniform choice.
  std::size_t weighted_index(const std::vector<double>& weights);

  /// Fisher-Yates shuffle.
  template <typename T>
  void shuffle(std::vector<T>& v) {
    for (std::size_t i = v.size(); i > 1; --i) {
      std::size_t j = static_cast<std::size_t>(uniform_u64(i));
      std::swap(v[i - 1], v[j]);
    }
  }

  /// Derive an independent child generator (for parallel determinism).
  Rng split() { return Rng{next_u64() ^ 0xa02bdbf7bb3c0a7ULL}; }

 private:
  static constexpr std::uint64_t rotl(std::uint64_t x, int k) {
    return (x << k) | (x >> (64 - k));
  }

  std::uint64_t s_[4]{};
  bool has_spare_ = false;
  double spare_ = 0.0;
};

}  // namespace vfimr
