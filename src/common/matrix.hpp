#pragma once
// Dense row-major matrix of doubles.  Used for traffic matrices (packets per
// cycle between core pairs), covariance matrices in the PCA application, and
// the MatrixMultiply workload itself.

#include <cstddef>
#include <vector>

#include "common/require.hpp"

namespace vfimr {

class Matrix {
 public:
  Matrix() = default;
  Matrix(std::size_t rows, std::size_t cols, double fill = 0.0)
      : rows_{rows}, cols_{cols}, data_(rows * cols, fill) {}

  static Matrix identity(std::size_t n) {
    Matrix m{n, n};
    for (std::size_t i = 0; i < n; ++i) m(i, i) = 1.0;
    return m;
  }

  std::size_t rows() const { return rows_; }
  std::size_t cols() const { return cols_; }
  bool empty() const { return data_.empty(); }

  double& operator()(std::size_t r, std::size_t c) {
    VFIMR_REQUIRE(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }
  double operator()(std::size_t r, std::size_t c) const {
    VFIMR_REQUIRE(r < rows_ && c < cols_);
    return data_[r * cols_ + c];
  }

  const std::vector<double>& data() const { return data_; }
  std::vector<double>& data() { return data_; }

  double sum() const {
    double s = 0.0;
    for (double v : data_) s += v;
    return s;
  }

  double max() const {
    double m = 0.0;
    for (double v : data_) m = v > m ? v : m;
    return m;
  }

  /// Scale every element so the max becomes 1 (no-op on all-zero matrices).
  void normalize_by_max() {
    const double m = max();
    if (m <= 0.0) return;
    for (double& v : data_) v /= m;
  }

  Matrix transposed() const {
    Matrix t{cols_, rows_};
    for (std::size_t r = 0; r < rows_; ++r)
      for (std::size_t c = 0; c < cols_; ++c) t(c, r) = (*this)(r, c);
    return t;
  }

  Matrix operator*(const Matrix& rhs) const {
    VFIMR_REQUIRE(cols_ == rhs.rows_);
    Matrix out{rows_, rhs.cols_};
    for (std::size_t i = 0; i < rows_; ++i) {
      for (std::size_t k = 0; k < cols_; ++k) {
        const double a = (*this)(i, k);
        if (a == 0.0) continue;
        for (std::size_t j = 0; j < rhs.cols_; ++j) {
          out(i, j) += a * rhs(k, j);
        }
      }
    }
    return out;
  }

  bool operator==(const Matrix& rhs) const {
    return rows_ == rhs.rows_ && cols_ == rhs.cols_ && data_ == rhs.data_;
  }

 private:
  std::size_t rows_ = 0;
  std::size_t cols_ = 0;
  std::vector<double> data_;
};

}  // namespace vfimr
