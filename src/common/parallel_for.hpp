#pragma once
// Bounded fork-join parallel loop for embarrassingly parallel experiment
// sweeps (one full-system simulation per index, each seconds long).
//
// Contract:
//  * `body(i)` is invoked exactly once for every i in [0, count), from at
//    most `threads` worker threads pulling indices off a shared atomic
//    counter (dynamic scheduling — sweep items have very uneven cost).
//  * Deterministic results are the *caller's* responsibility and trivially
//    achieved by writing into a pre-sized slot: results[i] = f(i).  The
//    runner guarantees each slot is written by exactly one invocation and
//    that all writes happen-before parallel_for returns (thread join).
//  * Seed isolation: the runner shares no RNG state between indices; any
//    randomness must live inside `body`, seeded from `i` alone, so results
//    are independent of the thread count and of scheduling order.
//  * The first exception thrown by any invocation is captured, the
//    remaining indices are abandoned (in-flight bodies still finish), and
//    the exception is rethrown on the calling thread after all workers join.
//  * threads <= 1 (or count <= 1) runs inline on the calling thread with no
//    pool — the sequential path used by tests and single-core hosts.

#include <atomic>
#include <cstddef>
#include <cstdlib>
#include <exception>
#include <functional>
#include <mutex>
#include <thread>
#include <vector>

namespace vfimr {

/// Worker count used when a sweep is asked to pick "a sensible default":
/// the VFIMR_THREADS environment variable when set to a positive integer,
/// otherwise std::thread::hardware_concurrency() (>= 1).
inline std::size_t default_parallelism() {
  if (const char* env = std::getenv("VFIMR_THREADS")) {
    const long v = std::strtol(env, nullptr, 10);
    if (v >= 1) return static_cast<std::size_t>(v);
  }
  const unsigned hw = std::thread::hardware_concurrency();
  return hw >= 1 ? hw : 1;
}

inline void parallel_for(std::size_t count, std::size_t threads,
                         const std::function<void(std::size_t)>& body) {
  if (count == 0) return;
  if (threads <= 1 || count == 1) {
    for (std::size_t i = 0; i < count; ++i) body(i);
    return;
  }
  const std::size_t workers = std::min(threads, count);
  std::atomic<std::size_t> next{0};
  std::atomic<bool> failed{false};
  std::exception_ptr first_error;
  std::mutex error_mu;

  auto work = [&]() {
    while (!failed.load(std::memory_order_relaxed)) {
      const std::size_t i = next.fetch_add(1, std::memory_order_relaxed);
      if (i >= count) return;
      try {
        body(i);
      } catch (...) {
        std::lock_guard<std::mutex> lock{error_mu};
        if (!first_error) first_error = std::current_exception();
        failed.store(true, std::memory_order_relaxed);
        return;
      }
    }
  };

  std::vector<std::thread> pool;
  pool.reserve(workers - 1);
  for (std::size_t w = 1; w < workers; ++w) pool.emplace_back(work);
  work();  // the calling thread is worker 0
  for (auto& t : pool) t.join();
  if (first_error) std::rethrow_exception(first_error);
}

}  // namespace vfimr
