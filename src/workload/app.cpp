#include "workload/app.hpp"

#include "common/require.hpp"

namespace vfimr::workload {

std::string app_name(App app) {
  switch (app) {
    case App::kHist:
      return "HIST";
    case App::kKmeans:
      return "KMEANS";
    case App::kLR:
      return "LR";
    case App::kMM:
      return "MM";
    case App::kPCA:
      return "PCA";
    case App::kWC:
      return "WC";
  }
  VFIMR_REQUIRE_MSG(false, "unknown App");
  return {};
}

std::string app_dataset(App app) {
  switch (app) {
    case App::kHist:
      return "Medium (399 MB)";
    case App::kKmeans:
      return "Vectors with dimension of 512";
    case App::kLR:
      return "Medium (100 MB)";
    case App::kMM:
      return "Matrix with dimension 999 x 999";
    case App::kPCA:
      return "Matrix with dimension 960 x 960";
    case App::kWC:
      return "Large (100 MB)";
  }
  VFIMR_REQUIRE_MSG(false, "unknown App");
  return {};
}

}  // namespace vfimr::workload
