#include <array>
#include <cmath>
#include <utility>

#include "common/require.hpp"
#include "common/rng.hpp"
#include "common/stats.hpp"
#include "workload/generators.hpp"
#include "workload/profile.hpp"

// Per-application calibration constants.
//
// Provenance of the numbers:
//  * Fig. 2 / Fig. 5 (utilization shapes): MM, HIST and PCA are nearly
//    homogeneous with a few higher "bottleneck" (master) threads; Kmeans and
//    WC vary widely across threads.  Cohort means are chosen so the V/F
//    selection rule (vfi/vf_assign) lands exactly on Table 2.
//  * WC map-task timing (§4.3): 100 map tasks; 0.268-0.284 s at 2.5 GHz and
//    0.280-0.342 s at 2.0 GHz.  Solving t = W/f + M gives W = 0.5 G-cycles
//    and M = 70 ms, i.e. a 26% memory fraction — used directly below.
//  * Phase-time fractions (Fig. 7): PCA has long lib-init and merge; LR has
//    almost no lib-init and no merge; WC/Kmeans have heavy reduce phases.
//  * Traffic mixtures (§7.3): LR has the highest injection rate and mostly
//    nearer-core traffic (large data units, 8-flit packets); WC and Kmeans
//    have high key counts with distant sharers (shuffle-heavy);
//    net_sensitivity encodes how much of each app's memory time rides on the
//    NoC (high for WC/Kmeans, low for LR).

namespace vfimr::workload {

namespace {

/// Build a TaskSet from "task takes `seconds` at f_max, `mem_frac` of which
/// is memory time".
TaskSet tasks(std::size_t count, double seconds, double mem_frac,
              double cv = 0.10) {
  constexpr double kFmax = 2.5e9;
  TaskSet t;
  t.count = count;
  t.cycles_mean = seconds * (1.0 - mem_frac) * kFmax;
  t.cycles_cv = cv;
  t.mem_seconds_mean = seconds * mem_frac;
  t.mem_cv = cv;
  return t;
}

SerialStage serial(double seconds, double mem_frac) {
  constexpr double kFmax = 2.5e9;
  return SerialStage{seconds * (1.0 - mem_frac) * kFmax,
                     seconds * mem_frac};
}

struct Calibration {
  std::vector<UtilizationCohort> cohorts;
  std::vector<std::size_t> masters;
  double master_util = 0.95;
  TrafficSpec traffic;
  std::uint32_t packet_flits = 4;
  double net_sensitivity = 0.5;
  int iterations = 1;
  PhaseModel phases;
};

Calibration calibrate(App app) {
  Calibration c;
  switch (app) {
    case App::kMM:
      // Nearly homogeneous (Fig. 2c); masters land in a lower-utilization
      // cohort, producing the V/F reassignment case of §4.2/Fig. 4.
      c.cohorts = {{32, 0.86, 0.012}, {32, 0.78, 0.012}};
      c.masters = {40, 41};
      c.master_util = 0.95;
      c.traffic = {0.80, 0.20, 0.25, 0.10, 200, 0.75};
      c.packet_flits = 4;
      c.net_sensitivity = 0.65;
      c.phases.lib_init = serial(0.060, 0.2);
      c.phases.map = tasks(300, 0.158, 0.35);
      c.phases.reduce = tasks(128, 0.04, 0.60);
      c.phases.merge = serial(0.065, 0.5);
      break;
    case App::kHist:
      c.cohorts = {{32, 0.85, 0.012}, {32, 0.77, 0.012}};
      c.masters = {36, 37};
      c.master_util = 0.88;  // smallest bottleneck/average ratio (Fig. 5)
      c.traffic = {0.70, 0.15, 0.25, 0.10, 300, 0.70};
      c.packet_flits = 4;
      c.net_sensitivity = 0.45;
      c.phases.lib_init = serial(0.035, 0.2);
      c.phases.map = tasks(256, 0.084, 0.35);
      c.phases.reduce = tasks(128, 0.025, 0.60);
      c.phases.merge = serial(0.035, 0.5);
      break;
    case App::kPCA:
      // Homogeneous plateau + pronounced masters: the strongest bottleneck
      // case (Fig. 5), with long lib-init and merge (two MR iterations).
      c.cohorts = {{64, 0.74, 0.012}};
      c.masters = {20, 21, 22, 23};
      c.master_util = 0.97;
      c.traffic = {0.90, 0.10, 0.30, 0.15, 300, 0.70};
      c.packet_flits = 4;
      c.net_sensitivity = 0.55;
      c.iterations = 2;
      c.phases.lib_init = serial(0.045, 0.2);
      c.phases.map = tasks(288, 0.030, 0.35);
      c.phases.reduce = tasks(128, 0.025, 0.70);
      c.phases.merge = serial(0.080, 0.5);
      break;
    case App::kKmeans:
      // Widely varying utilization (Fig. 2a): half the threads fall idle as
      // clusters converge in the second iteration.  Masters sit in the busy
      // cohort, so no reassignment is needed (§4.2).
      c.cohorts = {{16, 0.70, 0.04}, {16, 0.66, 0.02}, {32, 0.40, 0.10}};
      c.masters = {2, 3};
      c.master_util = 0.70;
      c.traffic = {0.65, 0.05, 0.40, 0.05, 500, 0.50};
      c.packet_flits = 4;
      c.net_sensitivity = 0.85;
      c.iterations = 2;
      c.phases.lib_init = serial(0.012, 0.2);
      c.phases.map = tasks(256, 0.047, 0.80);
      c.phases.reduce = tasks(128, 0.03, 0.90);
      c.phases.merge = serial(0.010, 0.5);
      break;
    case App::kWC:
      // Non-homogeneous like Kmeans; masters in the busy cohort.  Map task
      // timing is the paper's own calibration (W = 0.5 G-cycles, M = 70 ms).
      c.cohorts = {{32, 0.86, 0.015}, {32, 0.66, 0.04}};
      c.masters = {4, 5};
      c.master_util = 0.95;
      c.traffic = {1.20, 0.05, 0.40, 0.05, 600, 0.50};
      c.packet_flits = 4;
      c.net_sensitivity = 0.75;
      c.phases.lib_init = serial(0.020, 0.2);
      c.phases.map = tasks(200, 0.135, 0.26, 0.06);
      c.phases.reduce = tasks(128, 0.07, 0.85);
      c.phases.merge = serial(0.030, 0.5);
      break;
    case App::kLR:
      // Highest injection rate, nearer-core traffic, big 8-flit packets;
      // almost no lib-init, no merge (§4.2, §7.3).
      c.cohorts = {{32, 0.84, 0.012}, {32, 0.76, 0.012}};
      c.masters = {0};
      c.master_util = 0.86;
      c.traffic = {1.25, 0.30, 0.10, 0.05, 150, 0.80};
      c.packet_flits = 4;
      c.net_sensitivity = 0.25;
      c.phases.lib_init = serial(0.004, 0.2);
      c.phases.map = tasks(256, 0.07, 0.45);
      c.phases.reduce = tasks(128, 0.01, 0.60);
      c.phases.merge = serial(0.0, 0.0);
      break;
  }
  return c;
}

// How strongly each phase excites each traffic component, relative to the
// whole-run mixture (rows: lib_init, map, reduce, merge; columns: neighbor,
// shuffle, master, background).  LibInit and Merge are master-centric
// (input distribution / output collection) with no K/V shuffle; Map is
// data-locality and S-NUCA-read heavy; Reduce carries the shuffle.  LibInit
// and Merge share a row on purpose: their matrices come out bit-identical,
// which the NetworkEvaluator cache exploits.  The affinities are relative —
// per component c they are normalized by sum_p w_p * A[p][c] so that the
// phase-weighted sum of the phase matrices reproduces the whole-run matrix.
constexpr std::size_t kComponentCount = 4;
constexpr double kPhaseAffinity[kPhaseCount][kComponentCount] = {
    {0.2, 0.0, 3.0, 0.5},  // lib_init
    {1.5, 0.4, 0.7, 1.2},  // map
    {0.5, 2.2, 0.8, 0.8},  // reduce
    {0.2, 0.0, 3.0, 0.5},  // merge
};

/// Nominal wall-time share of each phase (serial stages on one thread, task
/// sets spread over all threads), at f_max and baseline network latency.
std::array<double, kPhaseCount> phase_time_weights(const PhaseModel& phases,
                                                   std::size_t threads) {
  constexpr double kFmax = 2.5e9;
  const auto serial_s = [](const SerialStage& s) {
    return s.cycles / kFmax + s.mem_seconds;
  };
  const auto tasks_s = [&](const TaskSet& t) {
    return static_cast<double>(t.count) *
           (t.cycles_mean / kFmax + t.mem_seconds_mean) /
           static_cast<double>(threads);
  };
  std::array<double, kPhaseCount> w = {
      serial_s(phases.lib_init), tasks_s(phases.map), tasks_s(phases.reduce),
      serial_s(phases.merge)};
  double total = 0.0;
  for (double v : w) total += v;
  VFIMR_REQUIRE_MSG(total > 0.0, "phase model has zero total time");
  for (double& v : w) v /= total;
  return w;
}

/// Populate `phase_traffic`/`phase_weight` by remixing the rate-scaled
/// traffic components with the per-phase affinities.
void build_phase_traffic(AppProfile& p, const TrafficComponents& parts) {
  p.phase_weight = phase_time_weights(p.phases, p.threads);

  // Normalize affinities per component: gain[p][c] = A[p][c] / sum_q w_q *
  // A[q][c].  Map has positive weight and positive affinity for every
  // component, so the denominator never vanishes.
  const Matrix* comp[kComponentCount] = {&parts.neighbor, &parts.shuffle,
                                         &parts.master, &parts.background};
  double denom[kComponentCount];
  for (std::size_t c = 0; c < kComponentCount; ++c) {
    denom[c] = 0.0;
    for (std::size_t q = 0; q < kPhaseCount; ++q) {
      denom[c] += p.phase_weight[q] * kPhaseAffinity[q][c];
    }
    VFIMR_REQUIRE(denom[c] > 0.0);
  }
  for (std::size_t ph = 0; ph < kPhaseCount; ++ph) {
    Matrix m{p.threads, p.threads};
    for (std::size_t c = 0; c < kComponentCount; ++c) {
      const double gain = kPhaseAffinity[ph][c] / denom[c];
      const auto& src = comp[c]->data();
      for (std::size_t i = 0; i < src.size(); ++i) {
        m.data()[i] += gain * src[i];
      }
    }
    p.phase_traffic[ph] = std::move(m);
  }
}

}  // namespace

double AppProfile::mean_utilization() const {
  return vfimr::mean(utilization);
}

double AppProfile::bottleneck_utilization() const {
  if (master_threads.empty()) return 0.0;
  double s = 0.0;
  for (std::size_t m : master_threads) s += utilization.at(m);
  return s / static_cast<double>(master_threads.size());
}

AppProfile make_profile(App app, const ProfileParams& params) {
  VFIMR_REQUIRE_MSG(params.threads == 64,
                    "profiles are calibrated for the paper's 64-core system");
  Calibration c = calibrate(app);
  Rng rng{params.seed ^ (static_cast<std::uint64_t>(app) << 32)};

  AppProfile p;
  p.app = app;
  p.threads = params.threads;
  p.utilization = make_utilization(params.threads, c.cohorts, rng);
  for (std::size_t m : c.masters) {
    VFIMR_REQUIRE(m < p.utilization.size());
    p.utilization[m] = c.master_util;
  }
  p.master_threads = c.masters;
  TrafficComponents parts;
  p.traffic = make_traffic(params.threads, c.traffic, c.masters, rng, &parts);
  p.packet_flits = c.packet_flits;
  p.net_sensitivity = c.net_sensitivity;
  p.iterations = c.iterations;
  p.phases = c.phases;
  build_phase_traffic(p, parts);
  return p;
}

}  // namespace vfimr::workload
