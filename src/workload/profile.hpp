#pragma once
// Calibrated application profiles — the substitute for the paper's GEM5
// full-system measurements.
//
// Each profile describes, per thread (64 threads on the 64-core platform):
//  * NVFI utilization at f_max (the `u` vector of Eq. 1, Fig. 2 shapes);
//  * the thread-to-thread traffic matrix (the `f_ip` of Eq. 1), covering the
//    shuffle of intermediate keys/values, data-locality neighbor traffic and
//    the master-thread control hotspot;
//  * the phase/task execution model used by the full-system simulator:
//    library-init and merge run on the master thread, map and reduce are
//    task sets executed under (modified) work stealing.  Task time at
//    frequency f and network latency ratio r is
//        t = cycles / f + mem_seconds * (1 - net_sensitivity
//                                          + net_sensitivity * r)
//    where r = (avg NoC packet latency) / (baseline NVFI-mesh latency);
//    `net_sensitivity` captures how much of the memory time is remote-L2
//    (network) bound vs. fixed (local cache / DRAM bank) — high for WC and
//    Kmeans (many keys, distant sharers), low for LR (§7.3).

#include <array>
#include <cstdint>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "workload/app.hpp"

namespace vfimr::workload {

/// The four stages of a MapReduce run, in execution order.  LibInit and
/// Merge are serial master-thread stages; Map and Reduce are task sets.
enum class Phase : std::uint8_t { kLibInit = 0, kMap = 1, kReduce = 2, kMerge = 3 };

inline constexpr std::size_t kPhaseCount = 4;

inline const char* phase_name(Phase p) {
  switch (p) {
    case Phase::kLibInit: return "lib_init";
    case Phase::kMap: return "map";
    case Phase::kReduce: return "reduce";
    case Phase::kMerge: return "merge";
  }
  return "?";
}

/// One parallel phase (Map or Reduce) as a set of stealable tasks.
struct TaskSet {
  std::size_t count = 0;
  double cycles_mean = 0.0;  ///< compute cycles per task (scales with 1/f)
  double cycles_cv = 0.1;    ///< coefficient of variation across tasks
  double mem_seconds_mean = 0.0;  ///< memory time per task at baseline latency
  double mem_cv = 0.1;
};

/// Sequential master-thread work (library init before Map, merge after
/// Reduce) — the source of the bottleneck-core effect of §4.2.
struct SerialStage {
  double cycles = 0.0;
  double mem_seconds = 0.0;
};

struct PhaseModel {
  SerialStage lib_init;
  TaskSet map;
  TaskSet reduce;
  SerialStage merge;
};

struct AppProfile {
  App app = App::kWC;
  std::size_t threads = 64;

  std::vector<double> utilization;  ///< per thread, NVFI system at f_max
  Matrix traffic;                   ///< packets/cycle, thread x thread
  std::uint32_t packet_flits = 4;   ///< flits per packet for this app

  /// Threads identified as masters; they execute lib-init and merge and show
  /// up as the high-utilization outliers of Fig. 2.
  std::vector<std::size_t> master_threads;

  double net_sensitivity = 0.5;  ///< fraction of mem time that is NoC-bound
  int iterations = 1;            ///< MapReduce iterations (Kmeans/PCA: 2)
  PhaseModel phases;

  /// Per-phase traffic matrices (packets/cycle, thread x thread).  The
  /// whole-run `traffic` matrix is their `phase_weight`-weighted sum, so the
  /// per-phase view refines, not replaces, the aggregate used by the VFI
  /// design flow.  Empty matrices (a profile built without phase resolution)
  /// mean "use `traffic` for every phase".
  std::array<Matrix, kPhaseCount> phase_traffic{};
  /// Nominal fraction of run time spent in each phase (sums to 1 when the
  /// profile is phase-resolved, all zero otherwise).
  std::array<double, kPhaseCount> phase_weight{};

  /// True when per-phase traffic matrices were populated.
  bool phase_resolved() const {
    return !phase_traffic[static_cast<std::size_t>(Phase::kMap)].empty();
  }

  /// Traffic matrix for `p`: the phase matrix when resolved, else the
  /// whole-run aggregate.
  const Matrix& traffic_of(Phase p) const {
    const auto& m = phase_traffic[static_cast<std::size_t>(p)];
    return m.empty() ? traffic : m;
  }

  std::string name() const { return app_name(app); }

  /// Mean utilization over all threads.
  double mean_utilization() const;
  /// Mean utilization over the master (bottleneck) threads.
  double bottleneck_utilization() const;
};

/// Parameters shared by all profile constructions.
struct ProfileParams {
  std::size_t threads = 64;
  std::uint64_t seed = 2015;  ///< DAC 2015
};

/// Build the calibrated profile for `app` (see workload/catalog.cpp for the
/// per-application constants and their provenance).
AppProfile make_profile(App app, const ProfileParams& params = {});

}  // namespace vfimr::workload
