#include "workload/from_runtime.hpp"

#include <algorithm>
#include <utility>

#include "common/require.hpp"

namespace vfimr::workload {

std::vector<double> utilization_from_profile(
    const mr::JobProfile& profile, std::size_t workers,
    const RuntimeExtractOptions& opts) {
  VFIMR_REQUIRE(workers > 0);
  VFIMR_REQUIRE(opts.min_utilization >= 0.0 && opts.min_utilization <= 1.0);
  const double wall =
      profile.map_stats.wall_seconds + profile.reduce_stats.wall_seconds;
  std::vector<double> u(workers, opts.min_utilization);
  if (wall <= 0.0) return u;
  for (std::size_t w = 0; w < workers; ++w) {
    double busy = 0.0;
    if (w < profile.map_stats.busy_seconds.size()) {
      busy += profile.map_stats.busy_seconds[w];
    }
    if (w < profile.reduce_stats.busy_seconds.size()) {
      busy += profile.reduce_stats.busy_seconds[w];
    }
    u[w] = std::clamp(busy / wall, opts.min_utilization, 1.0);
  }
  return u;
}

Matrix traffic_from_profile(const mr::JobProfile& profile,
                            std::size_t workers,
                            const RuntimeExtractOptions& opts) {
  VFIMR_REQUIRE(workers >= 2);
  VFIMR_REQUIRE(opts.total_rate > 0.0);
  VFIMR_REQUIRE(opts.uniform_floor >= 0.0 && opts.uniform_floor <= 1.0);

  Matrix traffic{workers, workers};
  const auto& shuffle = profile.shuffle_pairs;

  // Measured shuffle component.
  double shuffle_total = 0.0;
  for (std::size_t s = 0; s < std::min(shuffle.rows(), workers); ++s) {
    for (std::size_t d = 0; d < std::min(shuffle.cols(), workers); ++d) {
      if (s != d) shuffle_total += shuffle(s, d);
    }
  }
  const double shuffle_budget = opts.total_rate * (1.0 - opts.uniform_floor);
  if (shuffle_total > 0.0) {
    for (std::size_t s = 0; s < std::min(shuffle.rows(), workers); ++s) {
      for (std::size_t d = 0; d < std::min(shuffle.cols(), workers); ++d) {
        if (s != d) {
          traffic(s, d) += shuffle(s, d) / shuffle_total * shuffle_budget;
        }
      }
    }
  }

  // Uniform floor (plus the whole budget if nothing was observed).
  const double uniform_budget =
      opts.total_rate - (shuffle_total > 0.0 ? shuffle_budget : 0.0);
  const double per_pair =
      uniform_budget / static_cast<double>(workers * (workers - 1));
  for (std::size_t s = 0; s < workers; ++s) {
    for (std::size_t d = 0; d < workers; ++d) {
      if (s != d) traffic(s, d) += per_pair;
    }
  }
  return traffic;
}

namespace {

/// Measured shuffle matrix normalized to sum 1 over off-diagonal worker
/// pairs; empty when the profile observed no shuffle traffic.
Matrix normalized_shuffle(const mr::JobProfile& profile, std::size_t workers) {
  const auto& shuffle = profile.shuffle_pairs;
  Matrix m{workers, workers};
  double total = 0.0;
  for (std::size_t s = 0; s < std::min(shuffle.rows(), workers); ++s) {
    for (std::size_t d = 0; d < std::min(shuffle.cols(), workers); ++d) {
      if (s != d) {
        m(s, d) = shuffle(s, d);
        total += shuffle(s, d);
      }
    }
  }
  if (total <= 0.0) return Matrix{};
  for (auto& v : m.data()) v /= total;
  return m;
}

/// Uniform off-diagonal matrix normalized to sum 1.
Matrix normalized_uniform(std::size_t workers) {
  Matrix m{workers, workers};
  const double per_pair = 1.0 / static_cast<double>(workers * (workers - 1));
  for (std::size_t s = 0; s < workers; ++s) {
    for (std::size_t d = 0; d < workers; ++d) {
      if (s != d) m(s, d) = per_pair;
    }
  }
  return m;
}

/// Master (worker 0) control hotspot normalized to sum 1.
Matrix normalized_master(std::size_t workers) {
  Matrix m{workers, workers};
  const double per_pair = 1.0 / static_cast<double>(2 * (workers - 1));
  for (std::size_t t = 1; t < workers; ++t) {
    m(0, t) = per_pair;
    m(t, 0) = per_pair;
  }
  return m;
}

}  // namespace

RuntimePhaseTraffic phase_traffic_from_profile(
    const mr::JobProfile& profile, std::size_t workers,
    const RuntimeExtractOptions& opts) {
  VFIMR_REQUIRE(workers >= 2);
  VFIMR_REQUIRE(opts.total_rate > 0.0);

  const Matrix shuffle = normalized_shuffle(profile, workers);
  const Matrix uniform = normalized_uniform(workers);
  const Matrix master = normalized_master(workers);

  // Phase mixes over {master, shuffle, uniform}; when no shuffle was
  // observed its share falls back to the uniform floor.
  struct Mix {
    double master, shuffle, uniform;
  };
  constexpr Mix kMix[kPhaseCount] = {
      {0.8, 0.0, 0.2},  // lib_init: master splits and distributes the input
      {0.1, 0.3, 0.6},  // map: input reads + combiner flush into the shuffle
      {0.1, 0.8, 0.1},  // reduce: the K/V exchange itself
      {0.8, 0.0, 0.2},  // merge: master collects results (mirrors lib_init)
  };

  RuntimePhaseTraffic out;
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    Mix mix = kMix[p];
    if (shuffle.empty()) {
      mix.uniform += mix.shuffle;
      mix.shuffle = 0.0;
    }
    Matrix m{workers, workers};
    for (std::size_t i = 0; i < m.data().size(); ++i) {
      double v = mix.master * master.data()[i] + mix.uniform * uniform.data()[i];
      if (mix.shuffle > 0.0) v += mix.shuffle * shuffle.data()[i];
      m.data()[i] = v * opts.total_rate;
    }
    out.phase[p] = std::move(m);
  }

  // Weights: measured phase wall times (split time stands in for lib-init).
  const auto& t = profile.phases;
  out.weight = {t.split_s, t.map_s, t.reduce_s, t.merge_s};
  double total = 0.0;
  for (double v : out.weight) total += v;
  if (total > 0.0) {
    for (double& v : out.weight) v /= total;
  } else {
    out.weight.fill(1.0 / static_cast<double>(kPhaseCount));
  }

  out.aggregate = Matrix{workers, workers};
  for (std::size_t p = 0; p < kPhaseCount; ++p) {
    for (std::size_t i = 0; i < out.aggregate.data().size(); ++i) {
      out.aggregate.data()[i] += out.weight[p] * out.phase[p].data()[i];
    }
  }
  return out;
}

}  // namespace vfimr::workload
