#include "workload/from_runtime.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace vfimr::workload {

std::vector<double> utilization_from_profile(
    const mr::JobProfile& profile, std::size_t workers,
    const RuntimeExtractOptions& opts) {
  VFIMR_REQUIRE(workers > 0);
  VFIMR_REQUIRE(opts.min_utilization >= 0.0 && opts.min_utilization <= 1.0);
  const double wall =
      profile.map_stats.wall_seconds + profile.reduce_stats.wall_seconds;
  std::vector<double> u(workers, opts.min_utilization);
  if (wall <= 0.0) return u;
  for (std::size_t w = 0; w < workers; ++w) {
    double busy = 0.0;
    if (w < profile.map_stats.busy_seconds.size()) {
      busy += profile.map_stats.busy_seconds[w];
    }
    if (w < profile.reduce_stats.busy_seconds.size()) {
      busy += profile.reduce_stats.busy_seconds[w];
    }
    u[w] = std::clamp(busy / wall, opts.min_utilization, 1.0);
  }
  return u;
}

Matrix traffic_from_profile(const mr::JobProfile& profile,
                            std::size_t workers,
                            const RuntimeExtractOptions& opts) {
  VFIMR_REQUIRE(workers >= 2);
  VFIMR_REQUIRE(opts.total_rate > 0.0);
  VFIMR_REQUIRE(opts.uniform_floor >= 0.0 && opts.uniform_floor <= 1.0);

  Matrix traffic{workers, workers};
  const auto& shuffle = profile.shuffle_pairs;

  // Measured shuffle component.
  double shuffle_total = 0.0;
  for (std::size_t s = 0; s < std::min(shuffle.rows(), workers); ++s) {
    for (std::size_t d = 0; d < std::min(shuffle.cols(), workers); ++d) {
      if (s != d) shuffle_total += shuffle(s, d);
    }
  }
  const double shuffle_budget = opts.total_rate * (1.0 - opts.uniform_floor);
  if (shuffle_total > 0.0) {
    for (std::size_t s = 0; s < std::min(shuffle.rows(), workers); ++s) {
      for (std::size_t d = 0; d < std::min(shuffle.cols(), workers); ++d) {
        if (s != d) {
          traffic(s, d) += shuffle(s, d) / shuffle_total * shuffle_budget;
        }
      }
    }
  }

  // Uniform floor (plus the whole budget if nothing was observed).
  const double uniform_budget =
      opts.total_rate - (shuffle_total > 0.0 ? shuffle_budget : 0.0);
  const double per_pair =
      uniform_budget / static_cast<double>(workers * (workers - 1));
  for (std::size_t s = 0; s < workers; ++s) {
    for (std::size_t d = 0; d < workers; ++d) {
      if (s != d) traffic(s, d) += per_pair;
    }
  }
  return traffic;
}

}  // namespace vfimr::workload
