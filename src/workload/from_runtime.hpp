#pragma once
// Bridge from the real threaded MapReduce runtime to the VFI design flow.
//
// The paper profiles applications on GEM5 to obtain the per-core utilization
// vector `u` and the traffic matrix `f_ip` that drive Eq. 1.  This module
// extracts the equivalent quantities from a measured mr::JobProfile:
//   * utilization: per-worker busy seconds / phase wall time;
//   * traffic: the shuffle matrix (map-worker -> reduce-partition key/value
//     volume) symmetrized and scaled to a packets-per-cycle budget, plus a
//     uniform floor for the cache traffic the runtime cannot observe.
//
// This is what `examples/wordcount_cluster_design` uses to design VFIs from
// a live run.

#include <array>
#include <cstddef>

#include "common/matrix.hpp"
#include "mapreduce/engine.hpp"
#include "workload/profile.hpp"

namespace vfimr::workload {

struct RuntimeExtractOptions {
  /// Aggregate packets/cycle the extracted matrix is scaled to.
  double total_rate = 0.5;
  /// Fraction of the rate assigned uniformly (unobserved coherence traffic).
  double uniform_floor = 0.2;
  /// Utilization clamp (a worker is never reported fully idle).
  double min_utilization = 0.01;
};

/// Per-worker utilization in [min_utilization, 1]: busy time across the map
/// and reduce phases divided by their wall time.
std::vector<double> utilization_from_profile(const mr::JobProfile& profile,
                                             std::size_t workers,
                                             const RuntimeExtractOptions& opts = {});

/// Worker x worker packets/cycle matrix from the measured shuffle.  The
/// shuffle matrix is (map worker x reduce partition); with the default
/// engine configuration partitions == workers, so it is used directly.
Matrix traffic_from_profile(const mr::JobProfile& profile,
                            std::size_t workers,
                            const RuntimeExtractOptions& opts = {});

/// Phase-resolved traffic extracted from a measured run: one worker x worker
/// packets/cycle matrix per MapReduce phase plus the measured wall-time
/// share of each phase.  `aggregate` is the weight-weighted sum of the
/// phase matrices (the whole-run matrix a phase-blind consumer would use).
struct RuntimePhaseTraffic {
  std::array<Matrix, kPhaseCount> phase;
  std::array<double, kPhaseCount> weight;
  Matrix aggregate;
};

/// Extract per-phase traffic from a measured mr::JobProfile.  Each phase
/// matrix injects `opts.total_rate` packets/cycle with a phase-specific mix:
/// LibInit and Merge concentrate on the master (worker 0) control hotspot,
/// Map is uniform with a combiner-flush slice of the shuffle, Reduce is
/// shuffle-dominated.  Phase weights come from the measured phase wall
/// times (uniform when the profile carries no timing).
RuntimePhaseTraffic phase_traffic_from_profile(
    const mr::JobProfile& profile, std::size_t workers,
    const RuntimeExtractOptions& opts = {});

}  // namespace vfimr::workload
