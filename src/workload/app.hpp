#pragma once
// The six Phoenix++ applications evaluated in the paper (Table 1).

#include <array>
#include <string>

namespace vfimr::workload {

enum class App { kHist, kKmeans, kLR, kMM, kPCA, kWC };

inline constexpr std::array<App, 6> kAllApps = {
    App::kHist, App::kKmeans, App::kLR, App::kMM, App::kPCA, App::kWC};

std::string app_name(App app);

/// Table 1 of the paper: dataset description per application.
std::string app_dataset(App app);

}  // namespace vfimr::workload
