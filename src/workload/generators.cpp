#include "workload/generators.hpp"

#include <algorithm>

#include "common/require.hpp"

namespace vfimr::workload {

std::vector<double> make_utilization(
    std::size_t threads, const std::vector<UtilizationCohort>& cohorts,
    Rng& rng) {
  std::size_t total = 0;
  for (const auto& c : cohorts) total += c.count;
  VFIMR_REQUIRE_MSG(total == threads, "cohort sizes must cover all threads");
  std::vector<double> u;
  u.reserve(threads);
  for (const auto& c : cohorts) {
    for (std::size_t i = 0; i < c.count; ++i) {
      u.push_back(std::clamp(rng.normal(c.mean, c.stddev), 0.02, 1.0));
    }
  }
  return u;
}

Matrix make_traffic(std::size_t threads, const TrafficSpec& spec,
                    const std::vector<std::size_t>& masters, Rng& rng,
                    TrafficComponents* components) {
  VFIMR_REQUIRE(threads >= 2);
  VFIMR_REQUIRE(spec.total_rate > 0.0);
  const double frac_bg =
      1.0 - spec.frac_neighbor - spec.frac_shuffle - spec.frac_master;
  VFIMR_REQUIRE_MSG(frac_bg >= -1e-9, "traffic fractions exceed 1");

  Matrix weight{threads, threads};
  // Mirror of each normalized, fraction-weighted component (only filled when
  // the caller asked for them).  The aggregate `weight` keeps accumulating
  // components elementwise exactly as before, so its values are unchanged by
  // this bookkeeping.
  auto part = [&](Matrix TrafficComponents::* field) -> Matrix* {
    if (components == nullptr) return nullptr;
    Matrix& m = components->*field;
    m = Matrix{threads, threads};
    return &m;
  };

  // Neighbor locality: ring (t, t+1) and stride-8 (t, t+8) links, matching
  // the row/column adjacency of the identity mapping on the 8x8 die.
  Matrix* part_neighbor = part(&TrafficComponents::neighbor);
  if (spec.frac_neighbor > 0.0) {
    double total = 0.0;
    Matrix comp{threads, threads};
    auto link = [&](std::size_t a, std::size_t b, double w) {
      comp(a, b) += w;
      comp(b, a) += w;
      total += 2 * w;
    };
    for (std::size_t t = 0; t < threads; ++t) {
      link(t, (t + 1) % threads, 1.0);
      if (threads > 8) link(t, (t + 8) % threads, 0.6);
    }
    for (std::size_t i = 0; i < threads * threads; ++i) {
      const double w = spec.frac_neighbor * comp.data()[i] / total;
      weight.data()[i] += w;
      if (part_neighbor != nullptr) part_neighbor->data()[i] = w;
    }
  }

  // Shuffle: random directed pairs with exponentially distributed key volume
  // (a few hot reducers, a long tail) — the intermediate K/V exchange.
  // With probability `shuffle_locality` a pair stays within its 16-thread
  // data partition; the rest crosses partitions (distant sharers).
  Matrix* part_shuffle = part(&TrafficComponents::shuffle);
  if (spec.frac_shuffle > 0.0 && spec.shuffle_pairs > 0) {
    const std::size_t part = std::min<std::size_t>(16, threads);
    double total = 0.0;
    Matrix comp{threads, threads};
    for (std::size_t p = 0; p < spec.shuffle_pairs; ++p) {
      const auto s = static_cast<std::size_t>(rng.uniform_u64(threads));
      std::size_t d = s;
      if (rng.bernoulli(spec.shuffle_locality)) {
        const std::size_t base = (s / part) * part;
        do {
          d = base + static_cast<std::size_t>(rng.uniform_u64(part));
        } while (d == s);
      } else {
        do {
          d = static_cast<std::size_t>(rng.uniform_u64(threads));
        } while (d == s);
      }
      const double w = rng.exponential(1.0);
      comp(s, d) += w;
      total += w;
    }
    for (std::size_t i = 0; i < threads * threads; ++i) {
      const double w = spec.frac_shuffle * comp.data()[i] / total;
      weight.data()[i] += w;
      if (part_shuffle != nullptr) part_shuffle->data()[i] = w;
    }
  }

  // Master hotspot: scheduling/control round trips with every thread.
  Matrix* part_master = part(&TrafficComponents::master);
  if (spec.frac_master > 0.0 && !masters.empty()) {
    double total = 0.0;
    Matrix comp{threads, threads};
    for (std::size_t m : masters) {
      VFIMR_REQUIRE(m < threads);
      for (std::size_t t = 0; t < threads; ++t) {
        if (t == m) continue;
        comp(m, t) += 1.0;
        comp(t, m) += 1.0;
        total += 2.0;
      }
    }
    for (std::size_t i = 0; i < threads * threads; ++i) {
      const double w = spec.frac_master * comp.data()[i] / total;
      weight.data()[i] += w;
      if (part_master != nullptr) part_master->data()[i] = w;
    }
  }

  // Uniform background (cache-coherence noise).
  Matrix* part_bg = part(&TrafficComponents::background);
  if (frac_bg > 1e-12) {
    const double per_pair =
        frac_bg / static_cast<double>(threads * (threads - 1));
    for (std::size_t s = 0; s < threads; ++s) {
      for (std::size_t d = 0; d < threads; ++d) {
        if (s != d) {
          weight(s, d) += per_pair;
          if (part_bg != nullptr) (*part_bg)(s, d) = per_pair;
        }
      }
    }
  }

  // Scale mixture (sums to ~1) to the requested aggregate rate.
  const double sum = weight.sum();
  VFIMR_REQUIRE(sum > 0.0);
  const double rate_scale = spec.total_rate / sum;
  for (auto& v : weight.data()) v *= rate_scale;
  if (components != nullptr) {
    for (Matrix* m : {part_neighbor, part_shuffle, part_master, part_bg}) {
      for (auto& v : m->data()) v *= rate_scale;
    }
  }
  return weight;
}

Matrix cluster_traffic(const Matrix& traffic,
                       const std::vector<std::size_t>& assignment,
                       std::size_t clusters) {
  VFIMR_REQUIRE(traffic.rows() == traffic.cols());
  VFIMR_REQUIRE(assignment.size() == traffic.rows());
  Matrix out{clusters, clusters};
  for (std::size_t s = 0; s < traffic.rows(); ++s) {
    VFIMR_REQUIRE(assignment[s] < clusters);
    for (std::size_t d = 0; d < traffic.cols(); ++d) {
      if (s == d) continue;
      out(assignment[s], assignment[d]) += traffic(s, d);
    }
  }
  return out;
}

}  // namespace vfimr::workload
