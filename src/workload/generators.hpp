#pragma once
// Synthesis helpers for utilization vectors and traffic matrices.
// catalog.cpp combines these with per-application constants.

#include <cstdint>
#include <vector>

#include "common/matrix.hpp"
#include "common/rng.hpp"

namespace vfimr::workload {

/// A group of threads sharing a utilization level (e.g. "32 threads around
/// 0.86").  Cohorts are laid out contiguously in thread-id order.
struct UtilizationCohort {
  std::size_t count = 0;
  double mean = 0.5;
  double stddev = 0.01;
};

/// Per-thread utilization in [0, 1]; cohort i occupies the id range after
/// cohort i-1.  Total cohort count must equal `threads`.
std::vector<double> make_utilization(std::size_t threads,
                                     const std::vector<UtilizationCohort>& cohorts,
                                     Rng& rng);

/// Traffic mixture weights; fractions must sum to <= 1 (remainder: uniform
/// background traffic).
struct TrafficSpec {
  /// Aggregate packets per cycle injected chip-wide.
  double total_rate = 0.04;
  /// Data-locality component: thread t <-> t+1 and t <-> t+8 (the row/column
  /// neighbors under the identity thread mapping) — dominant for LR.
  double frac_neighbor = 0.3;
  /// Shuffle component: random thread pairs weighted by key volume — the
  /// intermediate key/value exchange, dominant for WC and Kmeans.
  double frac_shuffle = 0.5;
  /// Master hotspot: control traffic between every thread and the masters.
  double frac_master = 0.1;
  /// Number of random shuffle pairs (more pairs = flatter shuffle).
  std::size_t shuffle_pairs = 400;
  /// Probability that a shuffle pair stays within the same 16-thread data
  /// partition (mappers feeding reducers of their own key range).  High
  /// locality keeps heavy communication inside eventual VFI clusters.
  double shuffle_locality = 0.6;
};

/// The four mixture components of a synthesized traffic matrix, each scaled
/// to its share of the aggregate rate (their elementwise sum reproduces the
/// `make_traffic` result up to rounding).  Phase-resolved profiles remix
/// these with per-phase gains (catalog.cpp).
struct TrafficComponents {
  Matrix neighbor;    ///< ring / stride-8 data locality
  Matrix shuffle;     ///< random K/V exchange pairs
  Matrix master;      ///< control hotspot around the master threads
  Matrix background;  ///< uniform coherence noise (S-NUCA remote reads)
};

/// Build a thread x thread packets/cycle matrix from the mixture spec.
/// When `components` is non-null, the individual rate-scaled mixture
/// components are stored there as well.
Matrix make_traffic(std::size_t threads, const TrafficSpec& spec,
                    const std::vector<std::size_t>& masters, Rng& rng,
                    TrafficComponents* components = nullptr);

/// Group threads by VFI cluster: total traffic (both directions) between
/// cluster pairs.  `assignment[t]` in [0, clusters).
Matrix cluster_traffic(const Matrix& traffic,
                       const std::vector<std::size_t>& assignment,
                       std::size_t clusters);

}  // namespace vfimr::workload
