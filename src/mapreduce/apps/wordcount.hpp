#pragma once
// Word Count — counts occurrences of each unique word in a text (the paper's
// running example in §3.1; "Large (100 MB)" dataset in Table 1).  Keys are
// words, values are counts.

#include <cstdint>
#include <string>
#include <vector>

#include "mapreduce/engine.hpp"

namespace vfimr::mr::apps {

struct WordCountConfig {
  /// Deterministically generated input: `word_count` words drawn Zipf-like
  /// from a vocabulary of `vocabulary` distinct words.
  std::size_t word_count = 200'000;
  std::size_t vocabulary = 5'000;
  std::size_t map_tasks = 100;  ///< paper: 100 map tasks for the 100 MB input
  SchedulerConfig scheduler{};
  std::uint64_t seed = 1;
};

struct WordCountResult {
  std::vector<std::pair<std::string, std::uint64_t>> counts;  ///< sorted keys
  std::uint64_t total_words = 0;
  JobProfile profile;
};

/// Generate the synthetic corpus for `cfg` (exposed for tests/examples).
std::string generate_text(const WordCountConfig& cfg);

/// Run word count over `text` (task t processes the t-th chunk).
WordCountResult word_count(const std::string& text,
                           const WordCountConfig& cfg);

/// Convenience: generate + count.
WordCountResult run_word_count(const WordCountConfig& cfg);

}  // namespace vfimr::mr::apps
