#pragma once
// Linear Regression — least-squares fit over (x, y) samples (Phoenix++ LR;
// "Medium (100 MB)" in Table 1).  Map tasks emit partial sums under five
// fixed keys (Sx, Sy, Sxx, Syy, Sxy); the reduce phase folds them and the
// slope/intercept fall out in closed form.  The paper notes LR has almost no
// library-init and no merge phase and exchanges large data units with nearby
// cores — reflected in its tiny key space.

#include <cstdint>
#include <vector>

#include "mapreduce/engine.hpp"

namespace vfimr::mr::apps {

struct LinearRegressionConfig {
  std::size_t sample_count = 400'000;
  double true_slope = 2.5;
  double true_intercept = -7.0;
  double noise_stddev = 3.0;
  std::size_t map_tasks = 64;
  SchedulerConfig scheduler{};
  std::uint64_t seed = 3;
};

struct LinearRegressionResult {
  double slope = 0.0;
  double intercept = 0.0;
  std::uint64_t samples = 0;
  JobProfile profile;
};

struct Sample {
  double x;
  double y;
};

std::vector<Sample> generate_samples(const LinearRegressionConfig& cfg);

LinearRegressionResult linear_regression(const std::vector<Sample>& samples,
                                         const LinearRegressionConfig& cfg);

LinearRegressionResult run_linear_regression(
    const LinearRegressionConfig& cfg);

}  // namespace vfimr::mr::apps
