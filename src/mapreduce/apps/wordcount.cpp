#include "mapreduce/apps/wordcount.hpp"

#include <cctype>
#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace vfimr::mr::apps {

namespace {

/// Deterministic pseudo-words: "w" + index (simple, collision-free).
std::string word_for(std::size_t index) { return "w" + std::to_string(index); }

}  // namespace

std::string generate_text(const WordCountConfig& cfg) {
  VFIMR_REQUIRE(cfg.vocabulary > 0);
  Rng rng{cfg.seed};
  // Zipf(s=1) weights over the vocabulary — natural-language-like skew.
  std::vector<double> weights(cfg.vocabulary);
  for (std::size_t i = 0; i < cfg.vocabulary; ++i) {
    weights[i] = 1.0 / static_cast<double>(i + 1);
  }
  std::string text;
  text.reserve(cfg.word_count * 6);
  for (std::size_t i = 0; i < cfg.word_count; ++i) {
    if (i) text += ' ';
    text += word_for(rng.weighted_index(weights));
  }
  return text;
}

WordCountResult word_count(const std::string& text,
                           const WordCountConfig& cfg) {
  VFIMR_REQUIRE(cfg.map_tasks > 0);
  using WcEngine = Engine<std::string, std::uint64_t>;

  // Split: byte ranges snapped forward to whitespace so no word is cut.
  const std::size_t n = text.size();
  std::vector<std::pair<std::size_t, std::size_t>> chunks;
  chunks.reserve(cfg.map_tasks);
  std::size_t begin = 0;
  for (std::size_t t = 0; t < cfg.map_tasks; ++t) {
    std::size_t end = (t + 1 == cfg.map_tasks) ? n : (t + 1) * n / cfg.map_tasks;
    while (end < n && !std::isspace(static_cast<unsigned char>(text[end]))) {
      ++end;
    }
    if (end < begin) end = begin;
    chunks.emplace_back(begin, end);
    begin = end;
  }

  WcEngine engine{WcEngine::Options{cfg.scheduler, 0}};
  auto result =
      engine.run(chunks.size(), [&](std::size_t task, WcEngine::Emitter& em) {
        const auto [lo, hi] = chunks[task];
        std::size_t i = lo;
        while (i < hi) {
          while (i < hi && std::isspace(static_cast<unsigned char>(text[i]))) {
            ++i;
          }
          std::size_t j = i;
          while (j < hi && !std::isspace(static_cast<unsigned char>(text[j]))) {
            ++j;
          }
          if (j > i) em.emit(text.substr(i, j - i), 1);
          i = j;
        }
      });

  WordCountResult out;
  out.profile = std::move(result.profile);
  out.counts.reserve(result.pairs.size());
  for (auto& kv : result.pairs) {
    out.total_words += kv.value;
    out.counts.emplace_back(std::move(kv.key), kv.value);
  }
  return out;
}

WordCountResult run_word_count(const WordCountConfig& cfg) {
  return word_count(generate_text(cfg), cfg);
}

}  // namespace vfimr::mr::apps
