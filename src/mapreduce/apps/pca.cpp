#include "mapreduce/apps/pca.hpp"

#include "common/require.hpp"
#include "common/rng.hpp"

namespace vfimr::mr::apps {

Matrix generate_data(const PcaConfig& cfg) {
  Rng rng{cfg.seed};
  Matrix data{cfg.rows, cfg.dimensions};
  // Correlated columns: a few latent factors so the covariance is non-trivial.
  const std::size_t factors = std::max<std::size_t>(2, cfg.dimensions / 8);
  Matrix loadings{factors, cfg.dimensions};
  for (auto& v : loadings.data()) v = rng.uniform(-1.0, 1.0);
  for (std::size_t r = 0; r < cfg.rows; ++r) {
    std::vector<double> z(factors);
    for (auto& v : z) v = rng.normal();
    for (std::size_t d = 0; d < cfg.dimensions; ++d) {
      double x = 0.3 * rng.normal();
      for (std::size_t f = 0; f < factors; ++f) x += z[f] * loadings(f, d);
      data(r, d) = x;
    }
  }
  return data;
}

PcaResult pca(const Matrix& data, const PcaConfig& cfg) {
  VFIMR_REQUIRE(data.rows() >= 2 && data.cols() >= 1);
  VFIMR_REQUIRE(cfg.map_tasks > 0);
  const std::size_t n = data.rows();
  const std::size_t dims = data.cols();
  PcaResult out;

  // ---- Pass 1: per-dimension means. Key = dimension, value = partial sum.
  {
    using MeanEngine = Engine<std::uint32_t, double>;
    MeanEngine engine{MeanEngine::Options{cfg.scheduler, 0}};
    auto result = engine.run(
        cfg.map_tasks, [&](std::size_t task, MeanEngine::Emitter& em) {
          const std::size_t lo = task * n / cfg.map_tasks;
          const std::size_t hi = (task + 1) * n / cfg.map_tasks;
          std::vector<double> sums(dims, 0.0);
          for (std::size_t r = lo; r < hi; ++r) {
            for (std::size_t d = 0; d < dims; ++d) sums[d] += data(r, d);
          }
          for (std::uint32_t d = 0; d < dims; ++d) em.emit(d, sums[d]);
        });
    out.mean.assign(dims, 0.0);
    for (const auto& kv : result.pairs) {
      VFIMR_REQUIRE(kv.key < dims);
      out.mean[kv.key] = kv.value / static_cast<double>(n);
    }
    out.profile.merge(result.profile);
  }

  // ---- Pass 2: covariance, upper triangle. Key = i * dims + j (i <= j).
  {
    using CovEngine = Engine<std::uint64_t, double>;
    CovEngine engine{CovEngine::Options{cfg.scheduler, 0}};
    auto result = engine.run(
        cfg.map_tasks, [&](std::size_t task, CovEngine::Emitter& em) {
          const std::size_t lo = task * n / cfg.map_tasks;
          const std::size_t hi = (task + 1) * n / cfg.map_tasks;
          // Task-local dense accumulation; one emit per (i, j) key.
          std::vector<double> acc(dims * dims, 0.0);
          std::vector<double> centered(dims);
          for (std::size_t r = lo; r < hi; ++r) {
            for (std::size_t d = 0; d < dims; ++d) {
              centered[d] = data(r, d) - out.mean[d];
            }
            for (std::size_t i = 0; i < dims; ++i) {
              for (std::size_t j = i; j < dims; ++j) {
                acc[i * dims + j] += centered[i] * centered[j];
              }
            }
          }
          for (std::size_t i = 0; i < dims; ++i) {
            for (std::size_t j = i; j < dims; ++j) {
              em.emit(static_cast<std::uint64_t>(i * dims + j),
                      acc[i * dims + j]);
            }
          }
        });
    out.covariance = Matrix{dims, dims};
    const double denom = static_cast<double>(n - 1);
    for (const auto& kv : result.pairs) {
      const std::size_t i = static_cast<std::size_t>(kv.key) / dims;
      const std::size_t j = static_cast<std::size_t>(kv.key) % dims;
      VFIMR_REQUIRE(i < dims && j < dims);
      out.covariance(i, j) = kv.value / denom;
      out.covariance(j, i) = kv.value / denom;
    }
    out.profile.merge(result.profile);
  }
  return out;
}

PcaResult run_pca(const PcaConfig& cfg) { return pca(generate_data(cfg), cfg); }

}  // namespace vfimr::mr::apps
