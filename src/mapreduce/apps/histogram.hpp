#pragma once
// Histogram — counts the frequency of each R/G/B intensity value in a bitmap
// (Phoenix++ HIST; "Medium (399 MB)" in Table 1).  768 keys: 3 channels x
// 256 intensities.

#include <array>
#include <cstdint>
#include <vector>

#include "mapreduce/engine.hpp"

namespace vfimr::mr::apps {

struct HistogramConfig {
  std::size_t pixel_count = 500'000;  ///< synthetic RGB pixels
  std::size_t map_tasks = 64;
  SchedulerConfig scheduler{};
  std::uint64_t seed = 2;
};

struct HistogramResult {
  /// bins[channel][intensity]: channel 0=R, 1=G, 2=B.
  std::array<std::array<std::uint64_t, 256>, 3> bins{};
  JobProfile profile;
};

/// Generate a synthetic interleaved-RGB image (3 bytes per pixel).
std::vector<std::uint8_t> generate_image(const HistogramConfig& cfg);

HistogramResult histogram(const std::vector<std::uint8_t>& rgb,
                          const HistogramConfig& cfg);

HistogramResult run_histogram(const HistogramConfig& cfg);

}  // namespace vfimr::mr::apps
