#pragma once
// Kmeans — iterative clustering of vectors (Phoenix++ Kmeans; "vectors with
// dimension of 512" in Table 1).  Each MapReduce iteration assigns points to
// the nearest centroid (map emits (cluster, partial centroid)) and recomputes
// centroids (reduce).  The paper notes Kmeans runs two MapReduce iterations
// on its dataset and that later iterations concentrate activity on fewer
// cores as clusters converge — the source of its highly non-uniform core
// utilization (Fig. 2a).

#include <cstdint>
#include <vector>

#include "mapreduce/engine.hpp"

namespace vfimr::mr::apps {

struct KmeansConfig {
  std::size_t point_count = 20'000;
  std::size_t dimensions = 32;  ///< paper uses 512; tests use smaller
  std::size_t clusters = 8;
  std::size_t max_iterations = 10;
  double convergence_eps = 1e-3;  ///< max centroid movement to stop
  std::size_t map_tasks = 64;
  SchedulerConfig scheduler{};
  std::uint64_t seed = 5;
};

struct KmeansResult {
  std::vector<std::vector<double>> centroids;  ///< clusters x dimensions
  std::vector<std::uint32_t> assignment;       ///< per point
  std::size_t iterations = 0;
  JobProfile profile;  ///< accumulated over all MapReduce iterations
};

/// Gaussian mixture around `clusters` well-separated true centers.
std::vector<std::vector<double>> generate_points(const KmeansConfig& cfg);

KmeansResult kmeans(const std::vector<std::vector<double>>& points,
                    const KmeansConfig& cfg);

KmeansResult run_kmeans(const KmeansConfig& cfg);

}  // namespace vfimr::mr::apps
