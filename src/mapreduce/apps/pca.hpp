#pragma once
// PCA — mean vector and covariance matrix of a data matrix (Phoenix++ PCA;
// "960 x 960" in Table 1).  Two MapReduce passes, matching the paper's note
// that PCA runs two MapReduce iterations: pass 1 computes per-dimension
// means, pass 2 computes the upper-triangular covariance entries.  PCA's
// long merge phase (many covariance keys funneling through shrinking merge
// stages) is what produces its pronounced bottleneck cores (Fig. 2b, §4.2).

#include <cstdint>

#include "common/matrix.hpp"
#include "mapreduce/engine.hpp"

namespace vfimr::mr::apps {

struct PcaConfig {
  std::size_t rows = 2'000;      ///< observations
  std::size_t dimensions = 48;   ///< paper: 960; tests use smaller
  std::size_t map_tasks = 64;
  SchedulerConfig scheduler{};
  std::uint64_t seed = 6;
};

struct PcaResult {
  std::vector<double> mean;  ///< per dimension
  Matrix covariance;         ///< dimensions x dimensions, symmetric
  JobProfile profile;        ///< accumulated over both passes
};

Matrix generate_data(const PcaConfig& cfg);

PcaResult pca(const Matrix& data, const PcaConfig& cfg);

PcaResult run_pca(const PcaConfig& cfg);

}  // namespace vfimr::mr::apps
