#include "mapreduce/apps/histogram.hpp"

#include <algorithm>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace vfimr::mr::apps {

std::vector<std::uint8_t> generate_image(const HistogramConfig& cfg) {
  Rng rng{cfg.seed};
  std::vector<std::uint8_t> rgb(cfg.pixel_count * 3);
  for (auto& b : rgb) {
    // Mildly non-uniform intensities (two-tone mixture) so bins differ.
    const double v = rng.bernoulli(0.7) ? rng.normal(96, 32) : rng.normal(200, 16);
    b = static_cast<std::uint8_t>(std::clamp(v, 0.0, 255.0));
  }
  return rgb;
}

HistogramResult histogram(const std::vector<std::uint8_t>& rgb,
                          const HistogramConfig& cfg) {
  VFIMR_REQUIRE(rgb.size() % 3 == 0);
  VFIMR_REQUIRE(cfg.map_tasks > 0);
  // Key encodes (channel, intensity): channel * 256 + intensity.
  using HistEngine = Engine<std::uint32_t, std::uint64_t>;
  const std::size_t pixels = rgb.size() / 3;

  HistEngine engine{HistEngine::Options{cfg.scheduler, 0}};
  auto result = engine.run(
      cfg.map_tasks, [&](std::size_t task, HistEngine::Emitter& em) {
        const std::size_t lo = task * pixels / cfg.map_tasks;
        const std::size_t hi = (task + 1) * pixels / cfg.map_tasks;
        // Task-local bins, flushed as one emit per touched key — the same
        // trick Phoenix++'s array container uses to cut emission cost.
        std::array<std::uint64_t, 768> local{};
        for (std::size_t p = lo; p < hi; ++p) {
          for (std::size_t c = 0; c < 3; ++c) {
            ++local[c * 256 + rgb[p * 3 + c]];
          }
        }
        for (std::uint32_t k = 0; k < 768; ++k) {
          if (local[k]) em.emit(k, local[k]);
        }
      });

  HistogramResult out;
  out.profile = std::move(result.profile);
  for (const auto& kv : result.pairs) {
    out.bins[kv.key / 256][kv.key % 256] = kv.value;
  }
  return out;
}

HistogramResult run_histogram(const HistogramConfig& cfg) {
  return histogram(generate_image(cfg), cfg);
}

}  // namespace vfimr::mr::apps
