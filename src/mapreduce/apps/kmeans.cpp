#include "mapreduce/apps/kmeans.hpp"

#include <cmath>
#include <limits>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace vfimr::mr::apps {

namespace {

/// Value type folded by the SumCombiner: running centroid sum + count.
struct ClusterAccum {
  std::vector<double> sum;
  std::uint64_t count = 0;

  ClusterAccum& operator+=(const ClusterAccum& o) {
    if (sum.size() < o.sum.size()) sum.resize(o.sum.size(), 0.0);
    for (std::size_t i = 0; i < o.sum.size(); ++i) sum[i] += o.sum[i];
    count += o.count;
    return *this;
  }
};

double squared_distance(const std::vector<double>& a,
                        const std::vector<double>& b) {
  double d = 0.0;
  for (std::size_t i = 0; i < a.size(); ++i) {
    const double t = a[i] - b[i];
    d += t * t;
  }
  return d;
}

}  // namespace

std::vector<std::vector<double>> generate_points(const KmeansConfig& cfg) {
  VFIMR_REQUIRE(cfg.clusters > 0 && cfg.dimensions > 0);
  Rng rng{cfg.seed};
  // True centers on a scaled simplex-like arrangement; points ~ N(center, 1).
  std::vector<std::vector<double>> centers(cfg.clusters);
  for (std::size_t c = 0; c < cfg.clusters; ++c) {
    centers[c].resize(cfg.dimensions);
    for (auto& v : centers[c]) v = rng.uniform(-20.0, 20.0);
  }
  std::vector<std::vector<double>> points(cfg.point_count);
  for (auto& p : points) {
    const auto& center = centers[rng.uniform_u64(cfg.clusters)];
    p.resize(cfg.dimensions);
    for (std::size_t d = 0; d < cfg.dimensions; ++d) {
      p[d] = center[d] + rng.normal();
    }
  }
  return points;
}

KmeansResult kmeans(const std::vector<std::vector<double>>& points,
                    const KmeansConfig& cfg) {
  VFIMR_REQUIRE(!points.empty());
  VFIMR_REQUIRE(cfg.clusters > 0 && cfg.clusters <= points.size());
  VFIMR_REQUIRE(cfg.map_tasks > 0);
  using KmEngine = Engine<std::uint32_t, ClusterAccum,
                          SumCombiner<ClusterAccum>>;
  const std::size_t n = points.size();
  const std::size_t dims = points[0].size();

  KmeansResult out;
  // Initial centroids: first k points (deterministic Forgy variant).
  out.centroids.assign(points.begin(),
                       points.begin() + static_cast<std::ptrdiff_t>(
                                            cfg.clusters));
  out.assignment.assign(n, 0);

  for (std::size_t iter = 0; iter < cfg.max_iterations; ++iter) {
    KmEngine engine{KmEngine::Options{cfg.scheduler, 0}};
    auto result = engine.run(
        cfg.map_tasks, [&](std::size_t task, KmEngine::Emitter& em) {
          const std::size_t lo = task * n / cfg.map_tasks;
          const std::size_t hi = (task + 1) * n / cfg.map_tasks;
          std::vector<ClusterAccum> local(cfg.clusters);
          for (std::size_t i = lo; i < hi; ++i) {
            std::uint32_t best = 0;
            double best_d = std::numeric_limits<double>::max();
            for (std::uint32_t c = 0; c < cfg.clusters; ++c) {
              const double d = squared_distance(points[i], out.centroids[c]);
              if (d < best_d) {
                best_d = d;
                best = c;
              }
            }
            out.assignment[i] = best;
            auto& acc = local[best];
            if (acc.sum.empty()) acc.sum.resize(dims, 0.0);
            for (std::size_t d = 0; d < dims; ++d) acc.sum[d] += points[i][d];
            ++acc.count;
          }
          for (std::uint32_t c = 0; c < cfg.clusters; ++c) {
            if (local[c].count) em.emit(c, local[c]);
          }
        });
    out.profile.merge(result.profile);
    ++out.iterations;

    double max_shift = 0.0;
    for (const auto& kv : result.pairs) {
      VFIMR_REQUIRE(kv.key < cfg.clusters && kv.value.count > 0);
      std::vector<double> next(dims);
      for (std::size_t d = 0; d < dims; ++d) {
        next[d] = kv.value.sum[d] / static_cast<double>(kv.value.count);
      }
      max_shift = std::max(
          max_shift, std::sqrt(squared_distance(next, out.centroids[kv.key])));
      out.centroids[kv.key] = std::move(next);
    }
    if (max_shift < cfg.convergence_eps) break;
  }

  // Final assignment sweep against the converged centroids (the per-point
  // labels recorded during the last Map phase predate the last centroid
  // update).
  for (std::size_t i = 0; i < n; ++i) {
    std::uint32_t best = 0;
    double best_d = std::numeric_limits<double>::max();
    for (std::uint32_t c = 0; c < cfg.clusters; ++c) {
      const double d = squared_distance(points[i], out.centroids[c]);
      if (d < best_d) {
        best_d = d;
        best = c;
      }
    }
    out.assignment[i] = best;
  }
  return out;
}

KmeansResult run_kmeans(const KmeansConfig& cfg) {
  return kmeans(generate_points(cfg), cfg);
}

}  // namespace vfimr::mr::apps
