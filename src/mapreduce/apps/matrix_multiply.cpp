#include "mapreduce/apps/matrix_multiply.hpp"

#include <vector>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace vfimr::mr::apps {

Matrix generate_matrix(std::size_t dimension, std::uint64_t seed) {
  Rng rng{seed};
  Matrix m{dimension, dimension};
  for (auto& v : m.data()) v = rng.uniform(-1.0, 1.0);
  return m;
}

MatrixMultiplyResult matrix_multiply(const Matrix& a, const Matrix& b,
                                     const MatrixMultiplyConfig& cfg) {
  VFIMR_REQUIRE(a.rows() == a.cols() && b.rows() == b.cols());
  VFIMR_REQUIRE(a.rows() == b.rows());
  VFIMR_REQUIRE(cfg.map_tasks > 0);
  const std::size_t n = a.rows();
  using Row = std::vector<double>;
  using MmEngine = Engine<std::uint32_t, Row, ReplaceCombiner<Row>>;

  MmEngine engine{MmEngine::Options{cfg.scheduler, 0}};
  auto result =
      engine.run(cfg.map_tasks, [&](std::size_t task, MmEngine::Emitter& em) {
        const std::size_t lo = task * n / cfg.map_tasks;
        const std::size_t hi = (task + 1) * n / cfg.map_tasks;
        for (std::size_t i = lo; i < hi; ++i) {
          Row row(n, 0.0);
          for (std::size_t k = 0; k < n; ++k) {
            const double aik = a(i, k);
            if (aik == 0.0) continue;
            for (std::size_t j = 0; j < n; ++j) row[j] += aik * b(k, j);
          }
          em.emit(static_cast<std::uint32_t>(i), row);
        }
      });

  MatrixMultiplyResult out;
  out.product = Matrix{n, n};
  for (const auto& kv : result.pairs) {
    VFIMR_REQUIRE(kv.key < n && kv.value.size() == n);
    for (std::size_t j = 0; j < n; ++j) out.product(kv.key, j) = kv.value[j];
  }
  out.profile = std::move(result.profile);
  return out;
}

MatrixMultiplyResult run_matrix_multiply(const MatrixMultiplyConfig& cfg) {
  const Matrix a = generate_matrix(cfg.dimension, cfg.seed);
  const Matrix b = generate_matrix(cfg.dimension, cfg.seed + 1);
  return matrix_multiply(a, b, cfg);
}

}  // namespace vfimr::mr::apps
