#include "mapreduce/apps/linear_regression.hpp"

#include "common/require.hpp"
#include "common/rng.hpp"

namespace vfimr::mr::apps {

namespace {
enum SumKey : std::uint32_t { kSx = 0, kSy, kSxx, kSyy, kSxy, kN };
}  // namespace

std::vector<Sample> generate_samples(const LinearRegressionConfig& cfg) {
  Rng rng{cfg.seed};
  std::vector<Sample> samples(cfg.sample_count);
  for (auto& s : samples) {
    s.x = rng.uniform(-100.0, 100.0);
    s.y = cfg.true_slope * s.x + cfg.true_intercept +
          rng.normal(0.0, cfg.noise_stddev);
  }
  return samples;
}

LinearRegressionResult linear_regression(const std::vector<Sample>& samples,
                                         const LinearRegressionConfig& cfg) {
  VFIMR_REQUIRE(cfg.map_tasks > 0);
  VFIMR_REQUIRE(samples.size() >= 2);
  using LrEngine = Engine<std::uint32_t, double>;
  const std::size_t n = samples.size();

  LrEngine engine{LrEngine::Options{cfg.scheduler, 0}};
  auto result =
      engine.run(cfg.map_tasks, [&](std::size_t task, LrEngine::Emitter& em) {
        const std::size_t lo = task * n / cfg.map_tasks;
        const std::size_t hi = (task + 1) * n / cfg.map_tasks;
        double sx = 0, sy = 0, sxx = 0, syy = 0, sxy = 0;
        for (std::size_t i = lo; i < hi; ++i) {
          const auto [x, y] = samples[i];
          sx += x;
          sy += y;
          sxx += x * x;
          syy += y * y;
          sxy += x * y;
        }
        em.emit(kSx, sx);
        em.emit(kSy, sy);
        em.emit(kSxx, sxx);
        em.emit(kSyy, syy);
        em.emit(kSxy, sxy);
        em.emit(kN, static_cast<double>(hi - lo));
      });

  double sums[6] = {};
  for (const auto& kv : result.pairs) {
    VFIMR_REQUIRE(kv.key < 6);
    sums[kv.key] = kv.value;
  }
  const double count = sums[kN];
  const double denom = count * sums[kSxx] - sums[kSx] * sums[kSx];
  VFIMR_REQUIRE_MSG(denom != 0.0, "degenerate x distribution");

  LinearRegressionResult out;
  out.samples = static_cast<std::uint64_t>(count);
  out.slope = (count * sums[kSxy] - sums[kSx] * sums[kSy]) / denom;
  out.intercept = (sums[kSy] - out.slope * sums[kSx]) / count;
  out.profile = std::move(result.profile);
  return out;
}

LinearRegressionResult run_linear_regression(
    const LinearRegressionConfig& cfg) {
  return linear_regression(generate_samples(cfg), cfg);
}

}  // namespace vfimr::mr::apps
