#pragma once
// Matrix Multiplication — C = A x B expressed as MapReduce (Phoenix++ MM;
// "999 x 999" in Table 1).  Each map task computes a block of output rows
// and emits (row index, row vector); rows are unique so the combiner is
// last-writer-wins and the reduce phase only gathers.

#include <cstdint>

#include "common/matrix.hpp"
#include "mapreduce/engine.hpp"

namespace vfimr::mr::apps {

struct MatrixMultiplyConfig {
  std::size_t dimension = 160;  ///< paper uses 999; tests use smaller
  std::size_t map_tasks = 64;
  SchedulerConfig scheduler{};
  std::uint64_t seed = 4;
};

struct MatrixMultiplyResult {
  Matrix product;
  JobProfile profile;
};

Matrix generate_matrix(std::size_t dimension, std::uint64_t seed);

MatrixMultiplyResult matrix_multiply(const Matrix& a, const Matrix& b,
                                     const MatrixMultiplyConfig& cfg);

MatrixMultiplyResult run_matrix_multiply(const MatrixMultiplyConfig& cfg);

}  // namespace vfimr::mr::apps
