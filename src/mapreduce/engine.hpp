#pragma once
// Phoenix++-style shared-memory MapReduce engine.
//
// Execution follows Fig. 1 of the paper: Split (caller decides task count),
// Map (work-stealing over map tasks, emitting into worker-local combining
// containers), Reduce (hash-partitioned key ranges reduced in parallel) and
// Merge (per-partition sort + k-way merge into one ordered result).
//
// The engine records a JobProfile: per-phase wall times, per-worker busy
// times and task counts, and the map-worker -> reduce-partition shuffle
// matrix.  The profile is what couples the real runtime to the VFI clustering
// (utilization vector u) and the WiNoC design (traffic matrix f_ip).

#include <algorithm>
#include <atomic>
#include <chrono>
#include <cstdint>
#include <functional>
#include <memory>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "common/matrix.hpp"
#include "common/require.hpp"
#include "mapreduce/scheduler.hpp"
#include "telemetry/telemetry.hpp"

namespace vfimr::mr {

/// Combiners fold repeated emissions of the same key (Phoenix++'s
/// "combining containers").  `operator()(acc, v)` must be associative.
template <typename V>
struct SumCombiner {
  void operator()(V& acc, const V& v) const { acc += v; }
};

template <typename V>
struct MinCombiner {
  void operator()(V& acc, const V& v) const {
    if (v < acc) acc = v;
  }
};

template <typename V>
struct MaxCombiner {
  void operator()(V& acc, const V& v) const {
    if (acc < v) acc = v;
  }
};

/// Last-writer-wins; for apps whose keys are emitted exactly once (e.g.
/// MatrixMultiply rows).
template <typename V>
struct ReplaceCombiner {
  void operator()(V& acc, const V& v) const { acc = v; }
};

struct PhaseTimes {
  double split_s = 0.0;
  double map_s = 0.0;
  double reduce_s = 0.0;
  double merge_s = 0.0;

  double total_s() const { return split_s + map_s + reduce_s + merge_s; }
};

struct JobProfile {
  PhaseTimes phases;
  SchedulerStats map_stats;
  SchedulerStats reduce_stats;
  /// shuffle(w, p): key/value pairs produced by map worker w that are read
  /// by reduce partition p — the on-chip traffic footprint of the shuffle.
  Matrix shuffle_pairs;
  std::size_t unique_keys = 0;
  std::uint64_t emitted_pairs = 0;

  /// Accumulate another job's profile (for iterative apps: Kmeans, PCA).
  void merge(const JobProfile& other);
};

/// Emits an engine run's phase spans onto a per-job "phases" trace track and
/// mirrors commit-once accounting into counters.  Timestamps are wall µs
/// since construction (job start), so map/reduce/merge spans abut.  Null
/// sink: every call is a pointer test.
class PhaseTrace {
 public:
  explicit PhaseTrace(const SchedulerConfig& cfg)
      : sink_{cfg.telemetry},
        label_{cfg.telemetry_label},
        start_{std::chrono::steady_clock::now()} {
    if (sink_ != nullptr) {
      track_ = sink_->tracer().track(label_, "phases");
    }
  }

  /// Record a phase that just ended and lasted `seconds`.
  void phase(const char* name, double seconds) const {
    if (sink_ == nullptr) return;
    const double end_us = std::chrono::duration<double, std::micro>(
                              std::chrono::steady_clock::now() - start_)
                              .count();
    sink_->tracer().complete(track_, name, end_us - seconds * 1e6,
                             seconds * 1e6);
  }

  /// Bump `<label><suffix>` (e.g. ".mr.map_commits") by one.
  void count(const char* suffix) const {
    if (sink_ == nullptr) return;
    sink_->metrics().counter(label_ + suffix).add();
  }

 private:
  telemetry::TelemetrySink* sink_;
  std::string label_;
  std::uint32_t track_ = 0;
  std::chrono::steady_clock::time_point start_;
};

template <typename K, typename V, typename Combiner = SumCombiner<V>,
          typename Hash = std::hash<K>>
class Engine {
 public:
  struct KeyValue {
    K key{};
    V value{};
  };

  struct Options {
    SchedulerConfig scheduler;       ///< used for both map and reduce phases
    std::size_t reduce_partitions = 0;  ///< 0 -> one per worker
  };

  struct Result {
    std::vector<KeyValue> pairs;  ///< merged, ascending key order
    JobProfile profile;
  };

  /// Worker-local emission sink handed to map functions.
  class Emitter {
   public:
    void emit(const K& key, const V& value) {
      auto [it, inserted] = local_->try_emplace(key, value);
      if (!inserted) combiner_(it->second, value);
      ++(*emitted_);
    }

   private:
    friend class Engine;
    Emitter(std::unordered_map<K, V, Hash>* local, std::uint64_t* emitted,
            Combiner combiner)
        : local_{local}, emitted_{emitted}, combiner_{combiner} {}
    std::unordered_map<K, V, Hash>* local_;
    std::uint64_t* emitted_;
    Combiner combiner_;
  };

  using MapFn = std::function<void(std::size_t task, Emitter& out)>;

  explicit Engine(Options options) : options_{std::move(options)} {
    VFIMR_REQUIRE(options_.scheduler.workers > 0);
    if (options_.reduce_partitions == 0) {
      options_.reduce_partitions = options_.scheduler.workers;
    }
  }

  Result run(std::size_t num_map_tasks, const MapFn& map_fn) {
    if (options_.scheduler.faults != nullptr) {
      return run_resilient(num_map_tasks, map_fn);
    }
    const std::size_t workers = options_.scheduler.workers;
    const std::size_t parts = options_.reduce_partitions;
    const PhaseTrace trace{options_.scheduler};
    Result result;
    result.profile.shuffle_pairs = Matrix{workers, parts};

    // ---- Map ----
    std::vector<std::unordered_map<K, V, Hash>> locals(workers);
    std::vector<std::uint64_t> emitted(workers, 0);
    TaskScheduler sched{options_.scheduler};
    const Combiner combiner{};
    result.profile.map_stats =
        sched.run(num_map_tasks, [&](std::size_t task, std::size_t worker) {
          Emitter em{&locals[worker], &emitted[worker], combiner};
          map_fn(task, em);
        });
    result.profile.phases.map_s = result.profile.map_stats.wall_seconds;
    trace.phase("map", result.profile.phases.map_s);
    for (std::uint64_t e : emitted) result.profile.emitted_pairs += e;

    // Shuffle: bucket every worker's combined pairs by reduce partition in
    // ONE pass (the naive alternative — each partition rescanning all
    // workers' maps — is O(parts x total_pairs)).  The same pass feeds the
    // shuffle-matrix accounting: every (worker-local key, value) that hashes
    // to partition p will be read across the chip by the reducer owning p.
    // Bucket order preserves each local map's iteration order, so the reduce
    // below performs the identical try_emplace sequence per partition.
    const Hash hasher{};
    std::vector<std::vector<std::vector<KeyValue>>> buckets(
        workers, std::vector<std::vector<KeyValue>>(parts));
    for (std::size_t w = 0; w < workers; ++w) {
      for (auto& [key, value] : locals[w]) {
        const std::size_t p = hasher(key) % parts;
        buckets[w][p].push_back(KeyValue{key, std::move(value)});
        result.profile.shuffle_pairs(w, p) += 1.0;
      }
      locals[w] = {};  // pairs now live in the buckets
    }

    // ---- Reduce ----
    std::vector<std::vector<KeyValue>> partitions(parts);
    result.profile.reduce_stats =
        sched.run(parts, [&](std::size_t part, std::size_t /*worker*/) {
          std::unordered_map<K, V, Hash> acc;
          for (std::size_t w = 0; w < workers; ++w) {
            for (const auto& kv : buckets[w][part]) {
              auto [it, inserted] = acc.try_emplace(kv.key, kv.value);
              if (!inserted) combiner(it->second, kv.value);
            }
          }
          auto& out = partitions[part];
          out.reserve(acc.size());
          for (auto& [key, value] : acc) {
            out.push_back(KeyValue{key, std::move(value)});
          }
          std::sort(out.begin(), out.end(),
                    [](const KeyValue& a, const KeyValue& b) {
                      return a.key < b.key;
                    });
        });
    result.profile.phases.reduce_s = result.profile.reduce_stats.wall_seconds;
    trace.phase("reduce", result.profile.phases.reduce_s);

    // ---- Merge ---- (k-way merge of the sorted partitions; sequential on
    // the master, matching the paper's shrinking-thread-count merge stages)
    const auto merge_start = std::chrono::steady_clock::now();
    result.pairs = merge_partitions(std::move(partitions));
    result.profile.phases.merge_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      merge_start)
            .count();
    trace.phase("merge", result.profile.phases.merge_s);
    result.profile.unique_keys = result.pairs.size();
    return result;
  }

 private:
  /// Fault-tolerant execution (scheduler.faults != nullptr).
  ///
  /// The legacy path's worker-local combining maps cannot survive worker
  /// deaths or duplicate (speculative) executions: a re-executed task would
  /// double-combine into the same worker map.  This path stages results per
  /// TASK with a commit-once flag — the first completed execution of a task
  /// publishes its emissions, duplicates are discarded — and shuffles in
  /// task-id order.  Because map_fn is deterministic per task, the reduce
  /// input (and therefore the merged output) is byte-identical under ANY
  /// fault plan, worker count, or interleaving.  The trade-off is weaker
  /// cross-task combining: repeated keys merge in reduce instead of in the
  /// map-side containers, so emitted/shuffle accounting is task-grained.
  Result run_resilient(std::size_t num_map_tasks, const MapFn& map_fn) {
    const std::size_t workers = options_.scheduler.workers;
    const std::size_t parts = options_.reduce_partitions;
    const PhaseTrace trace{options_.scheduler};
    Result result;
    result.profile.shuffle_pairs = Matrix{workers, parts};

    // ---- Map ---- (per-task staging, first commit wins)
    std::vector<std::unordered_map<K, V, Hash>> task_out(num_map_tasks);
    std::vector<std::uint64_t> task_emitted(num_map_tasks, 0);
    std::vector<std::size_t> task_committer(num_map_tasks, 0);
    std::unique_ptr<std::atomic<int>[]> committed{
        new std::atomic<int>[num_map_tasks]};
    for (std::size_t t = 0; t < num_map_tasks; ++t) {
      committed[t].store(0, std::memory_order_relaxed);
    }
    TaskScheduler sched{options_.scheduler};
    const Combiner combiner{};
    result.profile.map_stats =
        sched.run(num_map_tasks, [&](std::size_t task, std::size_t worker) {
          std::unordered_map<K, V, Hash> local;
          std::uint64_t emitted = 0;
          Emitter em{&local, &emitted, combiner};
          map_fn(task, em);
          int expected = 0;
          if (committed[task].compare_exchange_strong(
                  expected, 1, std::memory_order_acq_rel)) {
            task_out[task] = std::move(local);
            task_emitted[task] = emitted;
            task_committer[task] = worker;
            trace.count(".mr.map_commits");
          } else {
            // Losing duplicates drop their staging map.
            trace.count(".mr.duplicate_maps");
          }
        });
    result.profile.phases.map_s = result.profile.map_stats.wall_seconds;
    trace.phase("map", result.profile.phases.map_s);
    for (std::uint64_t e : task_emitted) result.profile.emitted_pairs += e;

    // Shuffle in task-id order: worker-independent, hence replay-exact.
    const Hash hasher{};
    std::vector<std::vector<KeyValue>> buckets(parts);
    for (std::size_t t = 0; t < num_map_tasks; ++t) {
      for (auto& [key, value] : task_out[t]) {
        const std::size_t p = hasher(key) % parts;
        buckets[p].push_back(KeyValue{key, std::move(value)});
        result.profile.shuffle_pairs(task_committer[t], p) += 1.0;
      }
      task_out[t] = {};
    }

    // ---- Reduce ---- (same commit-once treatment per partition)
    std::vector<std::vector<KeyValue>> partitions(parts);
    std::unique_ptr<std::atomic<int>[]> part_committed{
        new std::atomic<int>[parts]};
    for (std::size_t p = 0; p < parts; ++p) {
      part_committed[p].store(0, std::memory_order_relaxed);
    }
    result.profile.reduce_stats =
        sched.run(parts, [&](std::size_t part, std::size_t /*worker*/) {
          std::unordered_map<K, V, Hash> acc;
          for (const auto& kv : buckets[part]) {
            auto [it, inserted] = acc.try_emplace(kv.key, kv.value);
            if (!inserted) combiner(it->second, kv.value);
          }
          std::vector<KeyValue> out;
          out.reserve(acc.size());
          for (auto& [key, value] : acc) {
            out.push_back(KeyValue{key, std::move(value)});
          }
          std::sort(out.begin(), out.end(),
                    [](const KeyValue& a, const KeyValue& b) {
                      return a.key < b.key;
                    });
          int expected = 0;
          if (part_committed[part].compare_exchange_strong(
                  expected, 1, std::memory_order_acq_rel)) {
            partitions[part] = std::move(out);
          }
        });
    result.profile.phases.reduce_s = result.profile.reduce_stats.wall_seconds;
    trace.phase("reduce", result.profile.phases.reduce_s);

    const auto merge_start = std::chrono::steady_clock::now();
    result.pairs = merge_partitions(std::move(partitions));
    result.profile.phases.merge_s =
        std::chrono::duration<double>(std::chrono::steady_clock::now() -
                                      merge_start)
            .count();
    trace.phase("merge", result.profile.phases.merge_s);
    result.profile.unique_keys = result.pairs.size();
    return result;
  }

  std::vector<KeyValue> merge_partitions(
      std::vector<std::vector<KeyValue>> partitions) {
    struct Cursor {
      std::size_t part;
      std::size_t index;
    };
    auto greater = [&](const Cursor& a, const Cursor& b) {
      return partitions[b.part][b.index].key < partitions[a.part][a.index].key;
    };
    std::priority_queue<Cursor, std::vector<Cursor>, decltype(greater)> heap{
        greater};
    std::size_t total = 0;
    for (std::size_t p = 0; p < partitions.size(); ++p) {
      total += partitions[p].size();
      if (!partitions[p].empty()) heap.push(Cursor{p, 0});
    }
    std::vector<KeyValue> out;
    out.reserve(total);
    while (!heap.empty()) {
      const Cursor c = heap.top();
      heap.pop();
      out.push_back(std::move(partitions[c.part][c.index]));
      if (c.index + 1 < partitions[c.part].size()) {
        heap.push(Cursor{c.part, c.index + 1});
      }
    }
    return out;
  }

  Options options_;
};

}  // namespace vfimr::mr
