#pragma once
// Work-stealing task scheduler — the Phoenix++-style execution core.
//
// Tasks 0..N-1 are block-distributed over W workers.  A worker drains its own
// deque from the front; when empty it steals from the back of the victim with
// the most remaining tasks.  This reproduces Phoenix's task-stealing behaviour
// described in §3.2 of the paper.
//
// For VFI systems the paper modifies stealing (§4.3, Eq. 3): a core running
// below f_max may execute at most
//     N_f = floor( N/C * (1 - (f_max - f)/f_max) ) = floor( N/C * f/f_max )
// tasks in total, so that slow cores never hold tasks that fast cores could
// finish sooner.  Enable with SchedulerConfig::vfi_stealing_cap.

#include <cstdint>
#include <functional>
#include <string>
#include <vector>

#include "faults/faults.hpp"

namespace vfimr::telemetry {
class TelemetrySink;
}  // namespace vfimr::telemetry

namespace vfimr::mr {

/// Eq. 3 of the paper.  `rel_freq` is f/f_max in (0, 1]; cores at f_max are
/// never capped (the formula only applies to f < f_max).
std::size_t stealing_cap(std::size_t total_tasks, std::size_t cores,
                         double rel_freq);

struct SchedulerConfig {
  std::size_t workers = 1;
  /// Per-worker f/f_max in (0, 1]; empty means all run at f_max.
  std::vector<double> rel_freq;
  /// Apply the Eq. 3 task cap to workers with rel_freq < 1.
  bool vfi_stealing_cap = false;
  /// Non-null switches run() to the fault-tolerant mode: scheduled worker
  /// deaths abandon + re-queue their picked task, survivors take over, and
  /// tasks running longer than the plan's straggler threshold are
  /// speculatively re-issued.  Task bodies must then tolerate duplicate
  /// executions of the same task.  The plan must outlive the scheduler.
  const faults::WorkerFaultPlan* faults = nullptr;
  /// Telemetry sink (nullable, caller-owned; see src/telemetry/telemetry.hpp).
  /// Scheduler trace events use wall-clock µs since the run() call started;
  /// when null the hot path is one pointer test per task.
  telemetry::TelemetrySink* telemetry = nullptr;
  /// Track/metric prefix for this scheduler's events, e.g. "Kmeans MR".
  std::string telemetry_label = "mapreduce";
};

struct SchedulerStats {
  std::vector<std::uint64_t> tasks_executed;  ///< per worker
  std::vector<std::uint64_t> tasks_stolen;    ///< per worker (as thief)
  std::vector<double> busy_seconds;           ///< per worker, in task bodies
  double wall_seconds = 0.0;
  // Fault-tolerant mode only (all zero otherwise):
  std::uint64_t workers_died = 0;      ///< scheduled deaths that fired
  std::uint64_t tasks_requeued = 0;    ///< abandoned by dying workers
  std::uint64_t tasks_speculated = 0;  ///< duplicate straggler re-issues
};

/// Runs `body(task, worker)` for every task in [0, num_tasks) on `workers`
/// host threads with work stealing.  Blocking call; `body` must be
/// thread-safe across distinct tasks.
class TaskScheduler {
 public:
  explicit TaskScheduler(SchedulerConfig config);

  const SchedulerConfig& config() const { return config_; }

  SchedulerStats run(
      std::size_t num_tasks,
      const std::function<void(std::size_t task, std::size_t worker)>& body);

 private:
  SchedulerStats run_resilient(
      std::size_t num_tasks,
      const std::function<void(std::size_t task, std::size_t worker)>& body);

  SchedulerConfig config_;
};

}  // namespace vfimr::mr
