#include "mapreduce/scheduler.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <memory>
#include <mutex>
#include <thread>

#include "common/require.hpp"
#include "telemetry/telemetry.hpp"

namespace vfimr::mr {

std::size_t stealing_cap(std::size_t total_tasks, std::size_t cores,
                         double rel_freq) {
  VFIMR_REQUIRE(cores > 0);
  VFIMR_REQUIRE_MSG(rel_freq > 0.0 && rel_freq <= 1.0,
                    "rel_freq must be f/f_max in (0, 1]");
  if (rel_freq >= 1.0) return total_tasks;  // Eq. 3 only applies below f_max
  const double nf = static_cast<double>(total_tasks) /
                    static_cast<double>(cores) * rel_freq;
  return static_cast<std::size_t>(std::floor(nf));
}

TaskScheduler::TaskScheduler(SchedulerConfig config)
    : config_{std::move(config)} {
  VFIMR_REQUIRE(config_.workers > 0);
  if (!config_.rel_freq.empty()) {
    VFIMR_REQUIRE(config_.rel_freq.size() == config_.workers);
    for (double f : config_.rel_freq) {
      VFIMR_REQUIRE(f > 0.0 && f <= 1.0);
    }
  }
}

namespace {

/// One worker's task deque.  A plain mutex keeps this simple and correct;
/// tasks in this repository are coarse (workload chunks), so lock cost is
/// negligible next to task bodies.
class WorkDeque {
 public:
  void push_back(std::size_t t) {
    std::lock_guard lk{mu_};
    tasks_.push_back(t);
  }
  bool pop_front(std::size_t& t) {
    std::lock_guard lk{mu_};
    if (tasks_.empty()) return false;
    t = tasks_.front();
    tasks_.pop_front();
    return true;
  }
  bool steal_back(std::size_t& t) {
    std::lock_guard lk{mu_};
    if (tasks_.empty()) return false;
    t = tasks_.back();
    tasks_.pop_back();
    return true;
  }
  std::size_t size() const {
    std::lock_guard lk{mu_};
    return tasks_.size();
  }

 private:
  mutable std::mutex mu_;
  std::deque<std::size_t> tasks_;
};

/// Per-run telemetry wiring, resolved before workers spawn so the task loop
/// never touches the registry mutex.  A null sink reduces every hook to one
/// pointer test.  Trace timestamps: wall-clock µs since the run started.
struct RunTelemetry {
  telemetry::TelemetrySink* sink = nullptr;
  telemetry::Counter* tasks = nullptr;
  telemetry::Counter* steals = nullptr;
  telemetry::Counter* deaths = nullptr;
  telemetry::Counter* requeues = nullptr;
  telemetry::Counter* speculations = nullptr;
  std::vector<std::uint32_t> worker_tracks;
  std::chrono::steady_clock::time_point start;

  static RunTelemetry make(const SchedulerConfig& cfg,
                           std::chrono::steady_clock::time_point start) {
    RunTelemetry t;
    t.sink = cfg.telemetry;
    t.start = start;
    if (t.sink == nullptr) return t;
    auto& m = t.sink->metrics();
    const std::string& label = cfg.telemetry_label;
    t.tasks = &m.counter(label + ".mr.tasks");
    t.steals = &m.counter(label + ".mr.steals");
    t.deaths = &m.counter(label + ".mr.worker_deaths");
    t.requeues = &m.counter(label + ".mr.tasks_requeued");
    t.speculations = &m.counter(label + ".mr.tasks_speculated");
    t.worker_tracks.reserve(cfg.workers);
    for (std::size_t i = 0; i < cfg.workers; ++i) {
      t.worker_tracks.push_back(
          t.sink->tracer().track(label, "worker " + std::to_string(i)));
    }
    return t;
  }

  double us(std::chrono::steady_clock::time_point tp) const {
    return std::chrono::duration<double, std::micro>(tp - start).count();
  }
  double us_now() const { return us(std::chrono::steady_clock::now()); }

  void task_done(std::size_t worker, std::size_t task,
                 std::chrono::steady_clock::time_point t0,
                 std::chrono::steady_clock::time_point t1) const {
    if (sink == nullptr) return;
    tasks->add();
    sink->tracer().complete(
        worker_tracks[worker], "task " + std::to_string(task), us(t0),
        std::chrono::duration<double, std::micro>(t1 - t0).count());
  }
  void stole(std::size_t thief, std::size_t victim, std::size_t task) const {
    if (sink == nullptr) return;
    steals->add();
    sink->tracer().instant(worker_tracks[thief], "steal", us_now(),
                           {{"victim", static_cast<double>(victim)},
                            {"task", static_cast<double>(task)}});
  }
  void died(std::size_t worker, bool task_requeued) const {
    if (sink == nullptr) return;
    deaths->add();
    if (task_requeued) requeues->add();
    sink->tracer().instant(worker_tracks[worker], "death", us_now());
  }
  void speculated(std::size_t worker, std::size_t task) const {
    if (sink == nullptr) return;
    speculations->add();
    sink->tracer().instant(worker_tracks[worker], "speculate", us_now(),
                           {{"task", static_cast<double>(task)}});
  }
};

}  // namespace

SchedulerStats TaskScheduler::run(
    std::size_t num_tasks,
    const std::function<void(std::size_t, std::size_t)>& body) {
  if (config_.faults != nullptr) return run_resilient(num_tasks, body);
  const std::size_t w = config_.workers;
  SchedulerStats stats;
  stats.tasks_executed.assign(w, 0);
  stats.tasks_stolen.assign(w, 0);
  stats.busy_seconds.assign(w, 0.0);
  if (num_tasks == 0) return stats;

  // Block distribution, like the Phoenix splitter: worker i gets the
  // contiguous range [i*N/W, (i+1)*N/W).
  std::vector<WorkDeque> deques(w);
  for (std::size_t i = 0; i < w; ++i) {
    const std::size_t lo = i * num_tasks / w;
    const std::size_t hi = (i + 1) * num_tasks / w;
    for (std::size_t t = lo; t < hi; ++t) deques[i].push_back(t);
  }

  // Per-worker execution caps (Eq. 3).
  std::vector<std::size_t> cap(w, std::numeric_limits<std::size_t>::max());
  if (config_.vfi_stealing_cap && !config_.rel_freq.empty()) {
    for (std::size_t i = 0; i < w; ++i) {
      if (config_.rel_freq[i] < 1.0) {
        cap[i] = stealing_cap(num_tasks, w, config_.rel_freq[i]);
      }
    }
  }

  std::atomic<std::size_t> remaining{num_tasks};
  const auto wall_start = std::chrono::steady_clock::now();
  const RunTelemetry tele = RunTelemetry::make(config_, wall_start);

  auto worker_fn = [&](std::size_t me) {
    std::uint64_t executed = 0;
    std::uint64_t stolen = 0;
    double busy = 0.0;
    while (remaining.load(std::memory_order_acquire) > 0 &&
           executed < cap[me]) {
      std::size_t task = 0;
      bool got = deques[me].pop_front(task);
      if (!got) {
        // Steal from the victim with the most remaining tasks.
        std::size_t best = w;
        std::size_t best_size = 0;
        for (std::size_t v = 0; v < w; ++v) {
          if (v == me) continue;
          const std::size_t s = deques[v].size();
          if (s > best_size) {
            best_size = s;
            best = v;
          }
        }
        if (best == w) break;  // nothing anywhere: done (or racing stragglers)
        got = deques[best].steal_back(task);
        if (got) {
          ++stolen;
          tele.stole(me, best, task);
        }
      }
      if (!got) continue;  // lost a race; rescan
      const auto t0 = std::chrono::steady_clock::now();
      body(task, me);
      const auto t1 = std::chrono::steady_clock::now();
      busy += std::chrono::duration<double>(t1 - t0).count();
      ++executed;
      remaining.fetch_sub(1, std::memory_order_acq_rel);
      tele.task_done(me, task, t0, t1);
    }
    stats.tasks_executed[me] = executed;
    stats.tasks_stolen[me] = stolen;
    stats.busy_seconds[me] = busy;
  };

  std::vector<std::thread> threads;
  threads.reserve(w);
  for (std::size_t i = 0; i < w; ++i) threads.emplace_back(worker_fn, i);
  for (auto& t : threads) t.join();

  // Capped workers may exit while tasks remain; finish stragglers on the
  // calling thread attributed to worker 0 (the master), mirroring Phoenix's
  // master-side cleanup.  With sane caps (fast cores uncapped) this is empty.
  std::size_t task = 0;
  for (auto& d : deques) {
    while (d.pop_front(task)) {
      const auto t0 = std::chrono::steady_clock::now();
      body(task, 0);
      const auto t1 = std::chrono::steady_clock::now();
      stats.busy_seconds[0] +=
          std::chrono::duration<double>(t1 - t0).count();
      ++stats.tasks_executed[0];
      remaining.fetch_sub(1, std::memory_order_acq_rel);
      tele.task_done(0, task, t0, t1);
    }
  }

  stats.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  return stats;
}

// Fault-tolerant execution (SchedulerConfig::faults != nullptr).
//
// Differences from the fast path above:
//  * every task has an atomic lifecycle (queued -> running -> done) and a
//    claim timestamp, so survivors can detect and take over work;
//  * a scheduled worker death fires the moment the worker picks its
//    (after_tasks + 1)-th task: the pick is abandoned into a shared retry
//    queue and the thread exits, leaving its deque for thieves;
//  * an idle worker that finds no queued work speculatively re-issues the
//    longest-overdue running task (straggler mitigation) — task bodies must
//    tolerate duplicate executions;
//  * the master re-runs anything still undone after the join, so the call
//    completes every task even if every scheduled death fires.
SchedulerStats TaskScheduler::run_resilient(
    std::size_t num_tasks,
    const std::function<void(std::size_t, std::size_t)>& body) {
  const std::size_t w = config_.workers;
  const faults::WorkerFaultPlan& plan = *config_.faults;
  SchedulerStats stats;
  stats.tasks_executed.assign(w, 0);
  stats.tasks_stolen.assign(w, 0);
  stats.busy_seconds.assign(w, 0.0);
  if (num_tasks == 0) return stats;

  std::vector<WorkDeque> deques(w);
  for (std::size_t i = 0; i < w; ++i) {
    const std::size_t lo = i * num_tasks / w;
    const std::size_t hi = (i + 1) * num_tasks / w;
    for (std::size_t t = lo; t < hi; ++t) deques[i].push_back(t);
  }

  std::vector<std::size_t> cap(w, std::numeric_limits<std::size_t>::max());
  if (config_.vfi_stealing_cap && !config_.rel_freq.empty()) {
    for (std::size_t i = 0; i < w; ++i) {
      if (config_.rel_freq[i] < 1.0) {
        cap[i] = stealing_cap(num_tasks, w, config_.rel_freq[i]);
      }
    }
  }

  // Pick count at which each worker dies (max = immortal).
  std::vector<std::size_t> death_after(
      w, std::numeric_limits<std::size_t>::max());
  for (const auto& d : plan.deaths) {
    if (d.worker < w) {
      death_after[d.worker] =
          std::min<std::size_t>(death_after[d.worker], d.after_tasks);
    }
  }

  enum : int { kQueued = 0, kRunning = 1, kDone = 2 };
  std::unique_ptr<std::atomic<int>[]> state{new std::atomic<int>[num_tasks]};
  std::unique_ptr<std::atomic<std::int64_t>[]> claim_ns{
      new std::atomic<std::int64_t>[num_tasks]};
  for (std::size_t t = 0; t < num_tasks; ++t) {
    state[t].store(kQueued, std::memory_order_relaxed);
    claim_ns[t].store(0, std::memory_order_relaxed);
  }
  std::atomic<std::size_t> done_count{0};
  std::atomic<std::uint64_t> done_exec_ns{0};  // for the straggler threshold
  std::atomic<std::uint64_t> done_tasks{0};
  std::atomic<std::uint64_t> speculated{0};
  std::atomic<std::uint64_t> requeued{0};
  std::atomic<std::uint64_t> died{0};
  WorkDeque retry;  // tasks abandoned by dying workers

  const auto wall_start = std::chrono::steady_clock::now();
  const RunTelemetry tele = RunTelemetry::make(config_, wall_start);
  const auto now_ns = [&] {
    return std::chrono::duration_cast<std::chrono::nanoseconds>(
               std::chrono::steady_clock::now() - wall_start)
        .count();
  };

  const auto execute = [&](std::size_t task, std::size_t me, double& busy,
                           std::uint64_t& executed) {
    if (state[task].load(std::memory_order_acquire) == kDone) return;
    claim_ns[task].store(now_ns(), std::memory_order_relaxed);
    state[task].store(kRunning, std::memory_order_release);
    const auto t0 = std::chrono::steady_clock::now();
    body(task, me);
    const auto t1 = std::chrono::steady_clock::now();
    busy += std::chrono::duration<double>(t1 - t0).count();
    ++executed;
    tele.task_done(me, task, t0, t1);
    if (state[task].exchange(kDone, std::memory_order_acq_rel) != kDone) {
      // First completion of this task (duplicates land in the else branch).
      done_count.fetch_add(1, std::memory_order_acq_rel);
      done_exec_ns.fetch_add(
          static_cast<std::uint64_t>(
              std::chrono::duration_cast<std::chrono::nanoseconds>(t1 - t0)
                  .count()),
          std::memory_order_relaxed);
      done_tasks.fetch_add(1, std::memory_order_relaxed);
    }
  };

  // Oldest running task that has exceeded the straggler threshold, if any.
  // Re-claiming it bounds duplicates to one per threshold window.
  const auto find_straggler = [&](std::size_t& out_task) {
    const std::uint64_t dn = done_tasks.load(std::memory_order_relaxed);
    if (dn == 0 && plan.straggler_min_seconds <= 0.0) return false;
    const double mean_s =
        dn > 0 ? static_cast<double>(
                     done_exec_ns.load(std::memory_order_relaxed)) /
                     1e9 / static_cast<double>(dn)
               : 0.0;
    const double threshold_s = std::max(plan.straggler_multiple * mean_s,
                                        plan.straggler_min_seconds);
    const std::int64_t now = now_ns();
    const auto limit_ns = static_cast<std::int64_t>(threshold_s * 1e9);
    for (std::size_t t = 0; t < num_tasks; ++t) {
      if (state[t].load(std::memory_order_acquire) != kRunning) continue;
      const std::int64_t claimed = claim_ns[t].load(std::memory_order_relaxed);
      if (now - claimed > limit_ns) {
        claim_ns[t].store(now, std::memory_order_relaxed);
        out_task = t;
        return true;
      }
    }
    return false;
  };

  const auto worker_fn = [&](std::size_t me) {
    std::uint64_t executed = 0;
    std::uint64_t stolen = 0;
    double busy = 0.0;
    std::size_t picks = 0;
    while (done_count.load(std::memory_order_acquire) < num_tasks &&
           executed < cap[me]) {
      std::size_t task = 0;
      bool got = deques[me].pop_front(task);
      if (!got) got = retry.pop_front(task);
      if (!got) {
        std::size_t best = w;
        std::size_t best_size = 0;
        for (std::size_t v = 0; v < w; ++v) {
          if (v == me) continue;
          const std::size_t s = deques[v].size();
          if (s > best_size) {
            best_size = s;
            best = v;
          }
        }
        if (best < w) {
          got = deques[best].steal_back(task);
          if (got) {
            ++stolen;
            tele.stole(me, best, task);
          }
        }
      }
      bool speculative = false;
      if (!got) {
        got = find_straggler(task);
        speculative = got;
      }
      if (!got) {
        // All remaining tasks are running elsewhere and none is overdue.
        std::this_thread::sleep_for(std::chrono::microseconds{50});
        continue;
      }
      ++picks;
      if (picks > death_after[me]) {
        // The fault plan kills this worker at this pick: abandon the task
        // for the survivors and exit the thread.
        bool task_requeued = false;
        if (!speculative &&
            state[task].load(std::memory_order_acquire) != kDone) {
          retry.push_back(task);
          requeued.fetch_add(1, std::memory_order_relaxed);
          task_requeued = true;
        }
        died.fetch_add(1, std::memory_order_relaxed);
        tele.died(me, task_requeued);
        break;
      }
      if (speculative) {
        speculated.fetch_add(1, std::memory_order_relaxed);
        tele.speculated(me, task);
      }
      execute(task, me, busy, executed);
    }
    stats.tasks_executed[me] = executed;
    stats.tasks_stolen[me] = stolen;
    stats.busy_seconds[me] = busy;
  };

  std::vector<std::thread> threads;
  threads.reserve(w);
  for (std::size_t i = 0; i < w; ++i) threads.emplace_back(worker_fn, i);
  for (auto& t : threads) t.join();

  // Master-side cleanup: re-run anything undone (deaths + caps can strand
  // tasks in the queues; this also covers the every-worker-died plan).
  double master_busy = 0.0;
  std::uint64_t master_executed = 0;
  for (std::size_t t = 0; t < num_tasks; ++t) {
    if (state[t].load(std::memory_order_acquire) != kDone) {
      execute(t, 0, master_busy, master_executed);
    }
  }
  stats.busy_seconds[0] += master_busy;
  stats.tasks_executed[0] += master_executed;

  stats.workers_died = died.load(std::memory_order_relaxed);
  stats.tasks_requeued = requeued.load(std::memory_order_relaxed);
  stats.tasks_speculated = speculated.load(std::memory_order_relaxed);
  stats.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  return stats;
}

}  // namespace vfimr::mr
