#include "mapreduce/scheduler.hpp"

#include <atomic>
#include <chrono>
#include <cmath>
#include <deque>
#include <limits>
#include <mutex>
#include <thread>

#include "common/require.hpp"

namespace vfimr::mr {

std::size_t stealing_cap(std::size_t total_tasks, std::size_t cores,
                         double rel_freq) {
  VFIMR_REQUIRE(cores > 0);
  VFIMR_REQUIRE_MSG(rel_freq > 0.0 && rel_freq <= 1.0,
                    "rel_freq must be f/f_max in (0, 1]");
  if (rel_freq >= 1.0) return total_tasks;  // Eq. 3 only applies below f_max
  const double nf = static_cast<double>(total_tasks) /
                    static_cast<double>(cores) * rel_freq;
  return static_cast<std::size_t>(std::floor(nf));
}

TaskScheduler::TaskScheduler(SchedulerConfig config)
    : config_{std::move(config)} {
  VFIMR_REQUIRE(config_.workers > 0);
  if (!config_.rel_freq.empty()) {
    VFIMR_REQUIRE(config_.rel_freq.size() == config_.workers);
    for (double f : config_.rel_freq) {
      VFIMR_REQUIRE(f > 0.0 && f <= 1.0);
    }
  }
}

namespace {

/// One worker's task deque.  A plain mutex keeps this simple and correct;
/// tasks in this repository are coarse (workload chunks), so lock cost is
/// negligible next to task bodies.
class WorkDeque {
 public:
  void push_back(std::size_t t) {
    std::lock_guard lk{mu_};
    tasks_.push_back(t);
  }
  bool pop_front(std::size_t& t) {
    std::lock_guard lk{mu_};
    if (tasks_.empty()) return false;
    t = tasks_.front();
    tasks_.pop_front();
    return true;
  }
  bool steal_back(std::size_t& t) {
    std::lock_guard lk{mu_};
    if (tasks_.empty()) return false;
    t = tasks_.back();
    tasks_.pop_back();
    return true;
  }
  std::size_t size() const {
    std::lock_guard lk{mu_};
    return tasks_.size();
  }

 private:
  mutable std::mutex mu_;
  std::deque<std::size_t> tasks_;
};

}  // namespace

SchedulerStats TaskScheduler::run(
    std::size_t num_tasks,
    const std::function<void(std::size_t, std::size_t)>& body) {
  const std::size_t w = config_.workers;
  SchedulerStats stats;
  stats.tasks_executed.assign(w, 0);
  stats.tasks_stolen.assign(w, 0);
  stats.busy_seconds.assign(w, 0.0);
  if (num_tasks == 0) return stats;

  // Block distribution, like the Phoenix splitter: worker i gets the
  // contiguous range [i*N/W, (i+1)*N/W).
  std::vector<WorkDeque> deques(w);
  for (std::size_t i = 0; i < w; ++i) {
    const std::size_t lo = i * num_tasks / w;
    const std::size_t hi = (i + 1) * num_tasks / w;
    for (std::size_t t = lo; t < hi; ++t) deques[i].push_back(t);
  }

  // Per-worker execution caps (Eq. 3).
  std::vector<std::size_t> cap(w, std::numeric_limits<std::size_t>::max());
  if (config_.vfi_stealing_cap && !config_.rel_freq.empty()) {
    for (std::size_t i = 0; i < w; ++i) {
      if (config_.rel_freq[i] < 1.0) {
        cap[i] = stealing_cap(num_tasks, w, config_.rel_freq[i]);
      }
    }
  }

  std::atomic<std::size_t> remaining{num_tasks};
  const auto wall_start = std::chrono::steady_clock::now();

  auto worker_fn = [&](std::size_t me) {
    std::uint64_t executed = 0;
    std::uint64_t stolen = 0;
    double busy = 0.0;
    while (remaining.load(std::memory_order_acquire) > 0 &&
           executed < cap[me]) {
      std::size_t task = 0;
      bool got = deques[me].pop_front(task);
      if (!got) {
        // Steal from the victim with the most remaining tasks.
        std::size_t best = w;
        std::size_t best_size = 0;
        for (std::size_t v = 0; v < w; ++v) {
          if (v == me) continue;
          const std::size_t s = deques[v].size();
          if (s > best_size) {
            best_size = s;
            best = v;
          }
        }
        if (best == w) break;  // nothing anywhere: done (or racing stragglers)
        got = deques[best].steal_back(task);
        if (got) ++stolen;
      }
      if (!got) continue;  // lost a race; rescan
      const auto t0 = std::chrono::steady_clock::now();
      body(task, me);
      const auto t1 = std::chrono::steady_clock::now();
      busy += std::chrono::duration<double>(t1 - t0).count();
      ++executed;
      remaining.fetch_sub(1, std::memory_order_acq_rel);
    }
    stats.tasks_executed[me] = executed;
    stats.tasks_stolen[me] = stolen;
    stats.busy_seconds[me] = busy;
  };

  std::vector<std::thread> threads;
  threads.reserve(w);
  for (std::size_t i = 0; i < w; ++i) threads.emplace_back(worker_fn, i);
  for (auto& t : threads) t.join();

  // Capped workers may exit while tasks remain; finish stragglers on the
  // calling thread attributed to worker 0 (the master), mirroring Phoenix's
  // master-side cleanup.  With sane caps (fast cores uncapped) this is empty.
  std::size_t task = 0;
  for (auto& d : deques) {
    while (d.pop_front(task)) {
      const auto t0 = std::chrono::steady_clock::now();
      body(task, 0);
      const auto t1 = std::chrono::steady_clock::now();
      stats.busy_seconds[0] +=
          std::chrono::duration<double>(t1 - t0).count();
      ++stats.tasks_executed[0];
      remaining.fetch_sub(1, std::memory_order_acq_rel);
    }
  }

  stats.wall_seconds = std::chrono::duration<double>(
                           std::chrono::steady_clock::now() - wall_start)
                           .count();
  return stats;
}

}  // namespace vfimr::mr
