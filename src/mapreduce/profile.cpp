#include "mapreduce/engine.hpp"

namespace vfimr::mr {

void JobProfile::merge(const JobProfile& other) {
  phases.split_s += other.phases.split_s;
  phases.map_s += other.phases.map_s;
  phases.reduce_s += other.phases.reduce_s;
  phases.merge_s += other.phases.merge_s;
  emitted_pairs += other.emitted_pairs;
  unique_keys = std::max(unique_keys, other.unique_keys);

  auto merge_stats = [](SchedulerStats& into, const SchedulerStats& from) {
    if (into.tasks_executed.size() < from.tasks_executed.size()) {
      into.tasks_executed.resize(from.tasks_executed.size(), 0);
      into.tasks_stolen.resize(from.tasks_stolen.size(), 0);
      into.busy_seconds.resize(from.busy_seconds.size(), 0.0);
    }
    for (std::size_t i = 0; i < from.tasks_executed.size(); ++i) {
      into.tasks_executed[i] += from.tasks_executed[i];
      into.tasks_stolen[i] += from.tasks_stolen[i];
      into.busy_seconds[i] += from.busy_seconds[i];
    }
    into.wall_seconds += from.wall_seconds;
  };
  merge_stats(map_stats, other.map_stats);
  merge_stats(reduce_stats, other.reduce_stats);

  if (shuffle_pairs.rows() == other.shuffle_pairs.rows() &&
      shuffle_pairs.cols() == other.shuffle_pairs.cols()) {
    for (std::size_t i = 0; i < shuffle_pairs.data().size(); ++i) {
      shuffle_pairs.data()[i] += other.shuffle_pairs.data()[i];
    }
  } else if (shuffle_pairs.empty()) {
    shuffle_pairs = other.shuffle_pairs;
  }
}

}  // namespace vfimr::mr
