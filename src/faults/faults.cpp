#include "faults/faults.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace vfimr::faults {

const char* kind_name(NocFaultKind kind) {
  switch (kind) {
    case NocFaultKind::kLink:
      return "link";
    case NocFaultKind::kRouter:
      return "router";
    case NocFaultKind::kWi:
      return "wi";
  }
  return "?";
}

namespace {

/// Deterministic event count for an expected value: the integer part plus a
/// Bernoulli draw on the fraction (so sweeps scale smoothly with rate).
std::uint64_t draw_count(double expected, Rng& rng) {
  if (expected <= 0.0) return 0;
  const double whole = std::floor(expected);
  std::uint64_t count = static_cast<std::uint64_t>(whole);
  if (rng.bernoulli(expected - whole)) ++count;
  return count;
}

void emit_events(NocFaultKind kind, const std::vector<std::uint32_t>& ids,
                 double rate, const FaultSpec& spec,
                 std::uint64_t horizon_cycles, Rng& rng,
                 FaultSchedule& out) {
  if (ids.empty() || horizon_cycles == 0) return;
  const double expected =
      rate * static_cast<double>(horizon_cycles) / 100'000.0;
  const std::uint64_t count = draw_count(expected, rng);
  for (std::uint64_t k = 0; k < count; ++k) {
    NocFault f;
    f.kind = kind;
    f.id = ids[rng.uniform_u64(ids.size())];
    f.at_cycle = rng.uniform_u64(horizon_cycles);
    if (rng.bernoulli(spec.transient_fraction)) {
      const double mean = static_cast<double>(spec.mean_repair_cycles);
      const auto repair = static_cast<std::uint64_t>(
          std::max(1.0, rng.uniform(0.5 * mean, 1.5 * mean)));
      f.until_cycle = f.at_cycle + repair;
    }
    out.add(f);
  }
}

}  // namespace

FaultSchedule make_noc_schedule(const FaultSpec& spec,
                                const std::vector<std::uint32_t>& edge_ids,
                                const std::vector<std::uint32_t>& router_ids,
                                const std::vector<std::uint32_t>& wi_ids,
                                std::uint64_t horizon_cycles,
                                std::uint64_t seed) {
  VFIMR_REQUIRE(spec.transient_fraction >= 0.0 &&
                spec.transient_fraction <= 1.0);
  FaultSchedule sched;
  Rng rng{seed ^ 0xFA417ULL};
  emit_events(NocFaultKind::kLink, edge_ids, spec.link_rate, spec,
              horizon_cycles, rng, sched);
  emit_events(NocFaultKind::kRouter, router_ids, spec.router_rate, spec,
              horizon_cycles, rng, sched);
  emit_events(NocFaultKind::kWi, wi_ids, spec.wi_rate, spec, horizon_cycles,
              rng, sched);
  return sched;
}

std::vector<CoreFault> make_core_faults(std::size_t cores,
                                        double per_core_prob,
                                        std::uint64_t seed) {
  VFIMR_REQUIRE(per_core_prob >= 0.0 && per_core_prob <= 1.0);
  std::vector<CoreFault> faults;
  if (cores == 0 || per_core_prob <= 0.0) return faults;
  Rng rng{seed ^ 0xC04EULL};
  // The guaranteed survivor rotates with the seed so sweeps do not always
  // spare core 0 (the master-side cleanup core).
  const std::size_t survivor = rng.uniform_u64(cores);
  for (std::size_t c = 0; c < cores; ++c) {
    if (c == survivor) continue;
    if (!rng.bernoulli(per_core_prob)) continue;
    faults.push_back(CoreFault{c, rng.uniform(0.05, 0.95)});
  }
  return faults;
}

WorkerFaultPlan make_worker_fault_plan(std::size_t workers, double death_prob,
                                       std::uint64_t max_after_tasks,
                                       std::uint64_t seed) {
  VFIMR_REQUIRE(death_prob >= 0.0 && death_prob <= 1.0);
  WorkerFaultPlan plan;
  if (workers <= 1 || death_prob <= 0.0) return plan;
  Rng rng{seed ^ 0xDEADULL};
  const std::size_t survivor = rng.uniform_u64(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    if (w == survivor) continue;
    if (!rng.bernoulli(death_prob)) continue;
    plan.deaths.push_back(
        WorkerFaultPlan::WorkerDeath{w, rng.uniform_u64(max_after_tasks + 1)});
  }
  return plan;
}

}  // namespace vfimr::faults
