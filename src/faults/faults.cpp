#include "faults/faults.hpp"

#include <algorithm>
#include <cmath>

#include "common/require.hpp"
#include "common/rng.hpp"

namespace vfimr::faults {

const char* kind_name(NocFaultKind kind) {
  switch (kind) {
    case NocFaultKind::kLink:
      return "link";
    case NocFaultKind::kRouter:
      return "router";
    case NocFaultKind::kWi:
      return "wi";
  }
  return "?";
}

namespace {

/// Deterministic event count for an expected value: the integer part plus a
/// Bernoulli draw on the fraction (so sweeps scale smoothly with rate).
std::uint64_t draw_count(double expected, Rng& rng) {
  if (expected <= 0.0) return 0;
  const double whole = std::floor(expected);
  std::uint64_t count = static_cast<std::uint64_t>(whole);
  if (rng.bernoulli(expected - whole)) ++count;
  return count;
}

void emit_events(NocFaultKind kind, const std::vector<std::uint32_t>& ids,
                 double rate, const FaultSpec& spec,
                 std::uint64_t horizon_cycles, Rng& rng,
                 FaultSchedule& out) {
  if (ids.empty() || horizon_cycles == 0) return;
  const double expected =
      rate * static_cast<double>(horizon_cycles) / 100'000.0;
  const std::uint64_t count = draw_count(expected, rng);
  for (std::uint64_t k = 0; k < count; ++k) {
    NocFault f;
    f.kind = kind;
    f.id = ids[rng.uniform_u64(ids.size())];
    f.at_cycle = rng.uniform_u64(horizon_cycles);
    if (rng.bernoulli(spec.transient_fraction)) {
      const double mean = static_cast<double>(spec.mean_repair_cycles);
      const auto repair = static_cast<std::uint64_t>(
          std::max(1.0, rng.uniform(0.5 * mean, 1.5 * mean)));
      f.until_cycle = f.at_cycle + repair;
    }
    out.add(f);
  }
}

}  // namespace

const char* platform_fault_name(PlatformFaultKind kind) {
  switch (kind) {
    case PlatformFaultKind::kCrash:
      return "crash";
    case PlatformFaultKind::kDegrade:
      return "degrade";
  }
  return "?";
}

namespace {

/// Candidate stream for one (instance, kind): a unit-rate (1/s) Poisson
/// process with a thinning mark and a window length drawn per candidate.
/// Every candidate consumes the same draws whether accepted or not, so the
/// accepted set at rate r is a subset of the accepted set at any r' >= r.
void emit_fleet_events(PlatformFaultKind kind, std::uint32_t instance,
                       double rate_per_ks, double mean_window_s,
                       double slowdown, double horizon_s, std::uint64_t seed,
                       std::vector<PlatformFault>& out) {
  const double accept = rate_per_ks / kMaxFleetFaultRatePerKs;
  SplitMix64 mix{seed ^ (kind == PlatformFaultKind::kCrash ? 0xC4A54ULL
                                                           : 0xDE64ADEULL)};
  mix.next();
  Rng rng{mix.next() + instance};
  double t = 0.0;
  while (true) {
    t += rng.exponential(1.0);  // candidate gap at the ceiling rate, 1/s
    const double mark = rng.uniform();
    const double window = rng.uniform(0.5, 1.5) * mean_window_s;
    if (t >= horizon_s) break;
    if (mark >= accept) continue;
    PlatformFault f;
    f.instance = instance;
    f.kind = kind;
    f.at_s = t;
    f.until_s = t + window;
    f.slowdown = kind == PlatformFaultKind::kDegrade ? slowdown : 1.0;
    out.push_back(f);
  }
}

}  // namespace

std::vector<PlatformFault> make_fleet_faults(const FleetFaultSpec& spec,
                                             std::size_t instances,
                                             double horizon_s) {
  VFIMR_REQUIRE_MSG(spec.crash_rate_per_ks >= 0.0 &&
                        spec.crash_rate_per_ks <= kMaxFleetFaultRatePerKs,
                    "crash_rate_per_ks must be in [0, "
                        << kMaxFleetFaultRatePerKs << "], got "
                        << spec.crash_rate_per_ks);
  VFIMR_REQUIRE_MSG(spec.degrade_rate_per_ks >= 0.0 &&
                        spec.degrade_rate_per_ks <= kMaxFleetFaultRatePerKs,
                    "degrade_rate_per_ks must be in [0, "
                        << kMaxFleetFaultRatePerKs << "], got "
                        << spec.degrade_rate_per_ks);
  VFIMR_REQUIRE_MSG(spec.degrade_slowdown >= 1.0,
                    "degrade_slowdown must be >= 1, got "
                        << spec.degrade_slowdown);
  VFIMR_REQUIRE_MSG(spec.crash_rate_per_ks == 0.0 || spec.mean_repair_s > 0.0,
                    "crash faults need mean_repair_s > 0, got "
                        << spec.mean_repair_s);
  VFIMR_REQUIRE_MSG(
      spec.degrade_rate_per_ks == 0.0 || spec.mean_degrade_s > 0.0,
      "degrade faults need mean_degrade_s > 0, got " << spec.mean_degrade_s);
  VFIMR_REQUIRE_MSG(horizon_s >= 0.0, "horizon_s must be >= 0, got "
                                          << horizon_s);

  std::vector<PlatformFault> out;
  if (!spec.any() || instances == 0 || horizon_s <= 0.0) return out;
  for (std::uint32_t i = 0; i < instances; ++i) {
    emit_fleet_events(PlatformFaultKind::kCrash, i, spec.crash_rate_per_ks,
                      spec.mean_repair_s, 1.0, horizon_s, spec.seed, out);
    emit_fleet_events(PlatformFaultKind::kDegrade, i,
                      spec.degrade_rate_per_ks, spec.mean_degrade_s,
                      spec.degrade_slowdown, horizon_s, spec.seed, out);
  }
  std::sort(out.begin(), out.end(),
            [](const PlatformFault& a, const PlatformFault& b) {
              if (a.at_s != b.at_s) return a.at_s < b.at_s;
              if (a.instance != b.instance) return a.instance < b.instance;
              return static_cast<int>(a.kind) < static_cast<int>(b.kind);
            });
  return out;
}

FaultSchedule make_noc_schedule(const FaultSpec& spec,
                                const std::vector<std::uint32_t>& edge_ids,
                                const std::vector<std::uint32_t>& router_ids,
                                const std::vector<std::uint32_t>& wi_ids,
                                std::uint64_t horizon_cycles,
                                std::uint64_t seed) {
  VFIMR_REQUIRE(spec.transient_fraction >= 0.0 &&
                spec.transient_fraction <= 1.0);
  FaultSchedule sched;
  Rng rng{seed ^ 0xFA417ULL};
  emit_events(NocFaultKind::kLink, edge_ids, spec.link_rate, spec,
              horizon_cycles, rng, sched);
  emit_events(NocFaultKind::kRouter, router_ids, spec.router_rate, spec,
              horizon_cycles, rng, sched);
  emit_events(NocFaultKind::kWi, wi_ids, spec.wi_rate, spec, horizon_cycles,
              rng, sched);
  return sched;
}

std::vector<CoreFault> make_core_faults(std::size_t cores,
                                        double per_core_prob,
                                        std::uint64_t seed) {
  VFIMR_REQUIRE(per_core_prob >= 0.0 && per_core_prob <= 1.0);
  std::vector<CoreFault> faults;
  if (cores == 0 || per_core_prob <= 0.0) return faults;
  Rng rng{seed ^ 0xC04EULL};
  // The guaranteed survivor rotates with the seed so sweeps do not always
  // spare core 0 (the master-side cleanup core).
  const std::size_t survivor = rng.uniform_u64(cores);
  for (std::size_t c = 0; c < cores; ++c) {
    if (c == survivor) continue;
    if (!rng.bernoulli(per_core_prob)) continue;
    faults.push_back(CoreFault{c, rng.uniform(0.05, 0.95)});
  }
  return faults;
}

WorkerFaultPlan make_worker_fault_plan(std::size_t workers, double death_prob,
                                       std::uint64_t max_after_tasks,
                                       std::uint64_t seed) {
  VFIMR_REQUIRE(death_prob >= 0.0 && death_prob <= 1.0);
  WorkerFaultPlan plan;
  if (workers <= 1 || death_prob <= 0.0) return plan;
  Rng rng{seed ^ 0xDEADULL};
  const std::size_t survivor = rng.uniform_u64(workers);
  for (std::size_t w = 0; w < workers; ++w) {
    if (w == survivor) continue;
    if (!rng.bernoulli(death_prob)) continue;
    plan.deaths.push_back(
        WorkerFaultPlan::WorkerDeath{w, rng.uniform_u64(max_after_tasks + 1)});
  }
  return plan;
}

}  // namespace vfimr::faults
