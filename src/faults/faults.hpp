#pragma once
// Seeded, deterministic fault-injection primitives shared by all three
// simulation layers (see DESIGN.md §9):
//
//  * NocFault / FaultSchedule — link-down, router-down and WI-down events in
//    the NoC cycle domain, transient (repaired at `until_cycle`) or
//    permanent.  Consumed by noc::Network, which reroutes surviving traffic
//    over the degraded topology and retires unlucky in-flight packets.
//  * WorkerFaultPlan — worker-thread deaths and straggler speculation for
//    the *real* MapReduce runtime (mapreduce/scheduler, engine).
//  * CoreFault — core failures for the deterministic task-level simulator
//    (sysmodel/task_sim), expressed as a fraction of the phase's ideal
//    makespan so the same plan scales across phases.
//  * FaultSpec — rate-based description used by the sweep benches; the
//    make_* generators expand it into concrete schedules from a seed, so a
//    (seed, spec) pair replays bit-identically.
//
// This library is intentionally dependency-free (common only): noc,
// mapreduce and sysmodel all link it without layering cycles.  Ids are raw
// uint32 values interpreted by the consumer (graph::EdgeId / graph::NodeId /
// core index).

#include <cstddef>
#include <cstdint>
#include <vector>

namespace vfimr::faults {

/// Sentinel `until_cycle`: the fault is permanent.
inline constexpr std::uint64_t kNeverRepaired = ~std::uint64_t{0};

enum class NocFaultKind : std::uint8_t {
  kLink,    ///< one wire or wireless edge goes down (id = graph::EdgeId)
  kRouter,  ///< a whole switch goes down (id = graph::NodeId)
  kWi,      ///< a wireless interface dies; its router keeps wire routing
};

/// Short human-readable name: "link" / "router" / "wi" (telemetry, logs).
const char* kind_name(NocFaultKind kind);

struct NocFault {
  NocFaultKind kind = NocFaultKind::kLink;
  std::uint32_t id = 0;  ///< EdgeId for kLink, NodeId for kRouter / kWi
  std::uint64_t at_cycle = 0;
  std::uint64_t until_cycle = kNeverRepaired;  ///< exclusive repair cycle

  bool transient() const { return until_cycle != kNeverRepaired; }
};

/// An ordered set of NoC fault events.  The container itself is a plain
/// value; Network expands it into a (cycle, down/up) timeline at
/// construction, so mutation after handing it to a Network has no effect.
class FaultSchedule {
 public:
  FaultSchedule() = default;

  void add(const NocFault& f) { events_.push_back(f); }
  bool empty() const { return events_.empty(); }
  std::size_t size() const { return events_.size(); }
  const std::vector<NocFault>& events() const { return events_; }

 private:
  std::vector<NocFault> events_;
};

/// Worker-thread fault plan for the real (threaded) MapReduce runtime.
/// A planned death kills the worker the moment it picks up its
/// (`after_tasks` + 1)-th task: the pick is abandoned un-executed (the
/// in-flight work is lost) and re-queued for the survivors.
struct WorkerFaultPlan {
  struct WorkerDeath {
    std::size_t worker = 0;
    std::uint64_t after_tasks = 0;
  };
  std::vector<WorkerDeath> deaths;

  /// Straggler detector: an otherwise-idle worker speculatively re-executes
  /// a claimed-but-unfinished task once its elapsed time exceeds
  /// `straggler_multiple` x the mean completed-task time (and at least
  /// `straggler_min_seconds`).  0 disables speculation.
  double straggler_multiple = 4.0;
  double straggler_min_seconds = 1e-3;

  bool has_deaths() const { return !deaths.empty(); }
};

/// A core failure for the deterministic task-level simulator.  The failure
/// time is `at_fraction` x the phase's ideal makespan (total nominal work /
/// cores), so one plan stresses short and long phases alike.  Failures are
/// permanent within a phase.
struct CoreFault {
  std::size_t core = 0;
  double at_fraction = 0.5;
};

/// Rate-based fault model for sweeps.  NoC rates are expected events per
/// 100k cycles over the whole network; `core_fail_prob` is the per-core
/// probability of failing during one simulated phase.
struct FaultSpec {
  double link_rate = 0.0;
  double router_rate = 0.0;
  double wi_rate = 0.0;
  double core_fail_prob = 0.0;
  /// Fraction of NoC faults that heal; repair time is uniform in
  /// [0.5, 1.5] x mean_repair_cycles.
  double transient_fraction = 0.8;
  std::uint64_t mean_repair_cycles = 2'000;
  /// Latency charged to a packet declared lost (retry budget exhausted);
  /// models the receiver-side timeout + end-to-end retransmission.  Kept on
  /// the order of mean_repair_cycles: lost packets must hurt the latency
  /// average, but a timeout of many thousands of mean latencies would let a
  /// single dead router dominate every downstream metric.
  std::uint64_t loss_timeout_cycles = 2'000;
  std::uint64_t seed = 17;

  bool any_noc() const {
    return link_rate > 0.0 || router_rate > 0.0 || wi_rate > 0.0;
  }
  bool any() const { return any_noc() || core_fail_prob > 0.0; }
};

// ---- Fleet-level platform faults (cluster serving tier, DESIGN.md §14).

enum class PlatformFaultKind : std::uint8_t {
  kCrash,    ///< instance down: in-flight and queued jobs are lost
  kDegrade,  ///< instance keeps serving, `slowdown` x slower per job
};

/// Short human-readable name: "crash" / "degrade".
const char* platform_fault_name(PlatformFaultKind kind);

/// One failure window of one fleet instance, in serving-tier virtual time
/// (seconds).  Windows may overlap; cluster::FleetFaultPlan normalizes a set
/// of windows into a per-instance state timeline.
struct PlatformFault {
  std::uint32_t instance = 0;
  PlatformFaultKind kind = PlatformFaultKind::kCrash;
  double at_s = 0.0;
  double until_s = 0.0;   ///< exclusive repair time; must be > at_s
  double slowdown = 1.0;  ///< service-time multiplier while degraded (>= 1)
};

/// Ceiling of the thinning process behind make_fleet_faults: candidate
/// events are drawn at one per instance-second and accepted with probability
/// rate / ceiling, so rates are capped at 1000 events per instance-ks.
inline constexpr double kMaxFleetFaultRatePerKs = 1000.0;

/// Rate-based fleet fault model.  Rates are expected events per instance
/// per 1000 simulated seconds (the serving tier's natural scale, mirroring
/// FaultSpec's per-100k-cycle NoC rates); both must stay below
/// kMaxFleetFaultRatePerKs.
struct FleetFaultSpec {
  double crash_rate_per_ks = 0.0;
  double degrade_rate_per_ks = 0.0;
  double mean_repair_s = 30.0;        ///< crash window length (x U[0.5,1.5])
  double mean_degrade_s = 60.0;       ///< degrade window length (x U[0.5,1.5])
  double degrade_slowdown = 2.0;      ///< service-time multiplier (>= 1)
  std::uint64_t seed = 17;

  bool any() const {
    return crash_rate_per_ks > 0.0 || degrade_rate_per_ks > 0.0;
  }
};

/// Expand `spec` into concrete per-instance fault windows over
/// [0, horizon_s), sorted by (at_s, instance, kind).  Deterministic in
/// (spec, instances, horizon_s) — and *nested* in the rates: events are
/// thinned from a fixed max-rate candidate stream per (seed, instance,
/// kind), so raising a rate only ever adds windows, never moves or removes
/// existing ones.  That makes "more faults => no more goodput" a structural
/// property a CI gate can assert exactly instead of statistically.
std::vector<PlatformFault> make_fleet_faults(const FleetFaultSpec& spec,
                                             std::size_t instances,
                                             double horizon_s);

/// Expand `spec` into a concrete NoC fault schedule over `horizon_cycles`.
/// `edge_ids` are the faultable edges (usually every edge), `router_ids` the
/// faultable switches and `wi_ids` the wireless-equipped nodes.  Empty
/// candidate lists silently produce no events of that kind.  Deterministic
/// in (spec, seed).
FaultSchedule make_noc_schedule(const FaultSpec& spec,
                                const std::vector<std::uint32_t>& edge_ids,
                                const std::vector<std::uint32_t>& router_ids,
                                const std::vector<std::uint32_t>& wi_ids,
                                std::uint64_t horizon_cycles,
                                std::uint64_t seed);

/// Draw per-core failures with probability `per_core_prob` each, guaranteeing
/// at least one surviving core.  Deterministic in (workers, prob, seed).
std::vector<CoreFault> make_core_faults(std::size_t cores,
                                        double per_core_prob,
                                        std::uint64_t seed);

/// Draw worker deaths for the real runtime: each worker except a guaranteed
/// survivor dies with probability `death_prob` after executing a uniform
/// number of tasks in [0, max_after_tasks].  Deterministic in all arguments.
WorkerFaultPlan make_worker_fault_plan(std::size_t workers, double death_prob,
                                       std::uint64_t max_after_tasks,
                                       std::uint64_t seed);

}  // namespace vfimr::faults
