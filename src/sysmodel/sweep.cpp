#include "sysmodel/sweep.hpp"

#include <algorithm>
#include <numeric>

#include "common/parallel_for.hpp"
#include "common/require.hpp"
#include "store/bytes.hpp"
#include "store/codec.hpp"
#include "store/eval_store.hpp"
#include "sysmodel/net_eval.hpp"

namespace vfimr::sysmodel {

std::vector<SystemComparison> sweep_comparisons(
    const std::vector<workload::AppProfile>& profiles,
    const FullSystemSim& sim, const PlatformParams& base_params,
    std::size_t threads) {
  if (threads == 0) threads = default_parallelism();
  std::vector<SystemComparison> out(profiles.size());
  parallel_for(profiles.size(), threads, [&](std::size_t i) {
    out[i] = compare_systems(profiles[i], sim, base_params);
  });
  return out;
}

std::vector<SystemReport> run_batch(const FullSystemSim& sim,
                                    const std::vector<BatchRequest>& requests,
                                    std::size_t threads) {
  for (const BatchRequest& r : requests) {
    VFIMR_REQUIRE_MSG(r.profile != nullptr,
                      "run_batch request has a null profile");
  }
  if (threads == 0) threads = default_parallelism();
  std::vector<SystemReport> out(requests.size());
  parallel_for(requests.size(), threads, [&](std::size_t i) {
    out[i] = sim.run(*requests[i].profile, requests[i].params,
                     requests[i].baselines);
  });
  return out;
}

namespace {

// Raw-byte key serialization, the same idiom as net_eval's cache_key and
// PlatformCache's platform_key: exactness over compactness, field by field
// so struct padding never leaks into a key.
template <typename T>
void put(std::string& key, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  key.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

void put_matrix(std::string& key, const Matrix& m) {
  put(key, m.rows());
  put(key, m.cols());
  if (!m.data().empty()) {
    key.append(reinterpret_cast<const char*>(m.data().data()),
               m.data().size() * sizeof(double));
  }
}

void put_task_set(std::string& key, const workload::TaskSet& t) {
  put(key, t.count);
  put(key, t.cycles_mean);
  put(key, t.cycles_cv);
  put(key, t.mem_seconds_mean);
  put(key, t.mem_cv);
}

void put_serial_stage(std::string& key, const workload::SerialStage& s) {
  put(key, s.cycles);
  put(key, s.mem_seconds);
}

}  // namespace

std::string comparison_point_key(const workload::AppProfile& profile,
                                 const FullSystemSim& sim,
                                 const PlatformParams& base_params) {
  std::string key;
  key.reserve(1024 + profile.traffic.data().size() * sizeof(double) * 2);

  // Workload content: everything FullSystemSim::run reads off the profile.
  put(key, static_cast<std::uint32_t>(profile.app));
  put(key, profile.threads);
  put(key, profile.utilization.size());
  for (const double u : profile.utilization) put(key, u);
  put_matrix(key, profile.traffic);
  put(key, profile.packet_flits);
  put(key, profile.master_threads.size());
  for (const std::size_t m : profile.master_threads) put(key, m);
  put(key, profile.net_sensitivity);
  put(key, profile.iterations);
  put_serial_stage(key, profile.phases.lib_init);
  put_task_set(key, profile.phases.map);
  put_task_set(key, profile.phases.reduce);
  put_serial_stage(key, profile.phases.merge);
  for (std::size_t p = 0; p < workload::kPhaseCount; ++p) {
    put_matrix(key, profile.phase_traffic[p]);
    put(key, profile.phase_weight[p]);
  }

  // Platform / run parameters — every value field; the service pointers and
  // the telemetry label are excluded because attaching them is proven
  // bit-identical to running without.
  const PlatformParams& params = base_params;
  put(key, static_cast<std::uint32_t>(params.kind));
  put(key, static_cast<std::uint8_t>(params.use_vfi2));
  put(key, static_cast<std::uint32_t>(params.placement));
  put(key, params.smallworld.k_intra);
  put(key, params.smallworld.k_inter);
  put(key, params.smallworld.k_max);
  put(key, params.smallworld.alpha);
  put(key, params.smallworld.channels);
  put(key, params.smallworld.wis_per_cluster);
  put(key, params.smallworld.seed);
  put(key, params.vfi.clusters);
  put(key, params.vfi.select.util_target);
  put(key, params.vfi.anneal.iterations);
  put(key, params.vfi.anneal.t_initial);
  put(key, params.vfi.anneal.t_final);
  put(key, params.vfi.anneal.seed);
  put(key, params.vfi.anneal.restarts);
  put(key, params.network_clock_hz);
  put(key, params.router_pipeline_cycles);
  put(key, static_cast<std::uint32_t>(params.vfi_stealing));
  put(key, static_cast<std::uint8_t>(params.fidelity));
  put(key, params.sim_cycles);
  put(key, params.drain_cycles);
  put(key, params.traffic_seed);
  put(key, params.phase_window_scale);

  const auto& sim_cfg = params.noc_sim;
  put(key, sim_cfg.wire_buffer_depth);
  put(key, sim_cfg.wi_buffer_depth);
  put(key, sim_cfg.node_cluster.size());
  for (const std::size_t c : sim_cfg.node_cluster) put(key, c);
  put(key, sim_cfg.sync_penalty_cycles);
  put(key, static_cast<std::uint8_t>(sim_cfg.reference_stepping));
  put(key, sim_cfg.fault_max_retries);
  put(key, sim_cfg.fault_backoff_base_cycles);
  put(key, sim_cfg.fault_reroute_wireless_cost);
  put(key, sim_cfg.faults.size());
  for (const auto& f : sim_cfg.faults.events()) {
    put(key, static_cast<std::uint32_t>(f.kind));
    put(key, f.id);
    put(key, f.at_cycle);
    put(key, f.until_cycle);
  }

  // Fault spec — all fields (core_fail_prob steers the task simulator, not
  // just the NoC).
  put(key, params.faults.link_rate);
  put(key, params.faults.router_rate);
  put(key, params.faults.wi_rate);
  put(key, params.faults.core_fail_prob);
  put(key, params.faults.transient_fraction);
  put(key, params.faults.mean_repair_cycles);
  put(key, params.faults.loss_timeout_cycles);
  put(key, params.faults.seed);

  // Simulator models: power constants and the V/F ladder.
  put(key, sim.models().core.params());
  put(key, sim.models().noc.params());
  put(key, sim.vf_table().size());
  for (std::size_t i = 0; i < sim.vf_table().size(); ++i) {
    put(key, sim.vf_table()[i]);
  }
  return key;
}

IncrementalSweepResult incremental_sweep_comparisons(
    const std::vector<workload::AppProfile>& profiles,
    const FullSystemSim& sim, const PlatformParams& base_params,
    const IncrementalOptions& options, std::size_t threads) {
  VFIMR_REQUIRE_MSG(options.store != nullptr,
                    "incremental sweep requires an attached EvalStore");
  VFIMR_REQUIRE_MSG(
      options.shard_count >= 1 && options.shard_index < options.shard_count,
      "shard " << options.shard_index << "/" << options.shard_count
               << " is not a valid partition");
  if (threads == 0) threads = default_parallelism();
  store::EvalStore& st = *options.store;

  const std::size_t n = profiles.size();
  IncrementalSweepResult out;
  out.comparisons.resize(n);
  out.valid.assign(n, 0);
  out.reused.assign(n, 0);

  std::vector<std::string> keys(n);
  std::vector<std::uint64_t> hashes(n);
  for (std::size_t i = 0; i < n; ++i) {
    keys[i] = store::domain_key(
        store::KeyDomain::kSweepPoint,
        comparison_point_key(profiles[i], sim, base_params));
    hashes[i] = store::fnv1a64(keys[i]);
  }

  // Compare against the prior manifest (diagnostics: how much of this sweep
  // is unchanged since the last run under this name).
  const std::string manifest_key =
      options.sweep_name.empty()
          ? std::string{}
          : store::domain_key(store::KeyDomain::kSweepManifest,
                              options.sweep_name);
  if (!manifest_key.empty()) {
    std::string bytes;
    if (st.get_meta(manifest_key, bytes)) {
      store::ByteReader r{bytes};
      std::uint64_t count = 0;
      r.get(count);
      std::vector<std::uint64_t> prior;
      if (r.ok() && r.remaining() / sizeof(std::uint64_t) >= count) {
        prior.resize(static_cast<std::size_t>(count));
        for (std::uint64_t& h : prior) r.get(h);
      }
      if (r.ok() && r.done()) {
        out.had_prior_manifest = true;
        std::sort(prior.begin(), prior.end());
        for (const std::uint64_t h : hashes) {
          if (std::binary_search(prior.begin(), prior.end(), h)) {
            ++out.manifest_prior_matches;
          }
        }
      }
    }
  }

  // Resolve store-first; collect the points this shard must evaluate.
  std::vector<std::size_t> to_eval;
  for (std::size_t i = 0; i < n; ++i) {
    std::string bytes;
    if (st.get(keys[i], bytes) &&
        store::decode_system_comparison(bytes, out.comparisons[i])) {
      out.valid[i] = 1;
      out.reused[i] = 1;
      ++out.reused_points;
    } else if (i % options.shard_count == options.shard_index) {
      to_eval.push_back(i);
    } else {
      ++out.skipped_points;
    }
  }

  // Evaluate the owned misses in parallel (slot-per-point, deterministic
  // for any thread count) and write each result back.
  parallel_for(to_eval.size(), threads, [&](std::size_t k) {
    const std::size_t i = to_eval[k];
    out.comparisons[i] = compare_systems(profiles[i], sim, base_params);
    out.valid[i] = 1;
    st.put(keys[i], store::encode_system_comparison(out.comparisons[i]));
  });
  out.evaluated_points = to_eval.size();
  if (!to_eval.empty()) st.flush();

  // Record this sweep's composition: the point-key hash list, input order.
  if (!manifest_key.empty()) {
    store::ByteWriter w;
    w.put(static_cast<std::uint64_t>(n));
    for (const std::uint64_t h : hashes) w.put(h);
    st.put_meta(manifest_key, w.bytes());
  }
  return out;
}

AutoComparison compare_systems_auto(const workload::AppProfile& profile,
                                    const FullSystemSim& sim,
                                    const PlatformParams& base_params) {
  AutoComparison out;

  // Explore all three systems in the analytical band.
  PlatformParams explore = base_params;
  explore.fidelity = Fidelity::kAuto;
  out.explored = compare_systems(profile, sim, explore);

  const SystemReport* reports[] = {&out.explored.nvfi_mesh,
                                   &out.explored.vfi_mesh,
                                   &out.explored.vfi_winoc};
  const SystemKind kinds[] = {SystemKind::kNvfiMesh, SystemKind::kVfiMesh,
                              SystemKind::kVfiWinoc};
  std::size_t best = 0;
  for (std::size_t i = 1; i < 3; ++i) {
    if (reports[i]->edp_js() < reports[best]->edp_js()) best = i;
  }
  out.frontier = kinds[best];

  // Confirm cycle-accurately.  The frontier EDP is only meaningful relative
  // to a baseline of the same band, so the NVFI reference is re-run
  // cycle-accurately too (one promotion each).
  PlatformParams confirm = base_params;
  confirm.fidelity = Fidelity::kCycleAccurate;
  confirm.kind = SystemKind::kNvfiMesh;
  out.confirmed_baseline = sim.run(profile, confirm);
  if (base_params.net_eval != nullptr) {
    base_params.net_eval->note_promotion(base_params.telemetry);
  }
  if (out.frontier == SystemKind::kNvfiMesh) {
    out.confirmed = out.confirmed_baseline;
    return out;
  }
  const PhaseBaselines baseline = phase_baselines(out.confirmed_baseline);
  confirm.kind = out.frontier;
  out.confirmed = sim.run(profile, confirm, baseline);
  if (base_params.net_eval != nullptr) {
    base_params.net_eval->note_promotion(base_params.telemetry);
  }
  return out;
}

DesignSpaceResult sweep_design_space(const workload::AppProfile& profile,
                                     const FullSystemSim& sim,
                                     const std::vector<SweepPoint>& points,
                                     std::size_t promote_top,
                                     std::size_t threads) {
  if (threads == 0) threads = default_parallelism();
  DesignSpaceResult out;
  out.points.resize(points.size());
  if (points.empty()) return out;

  // One NVFI-mesh reference per band, derived from the first point's
  // params: exploration compares analytical latencies against an analytical
  // baseline (errors largely cancel in the ratio), confirmations against a
  // cycle-accurate one.
  bool need_analytical = false;
  bool need_cycle = false;
  bool any_auto = false;
  for (const SweepPoint& p : points) {
    if (analytical_band(p.params.fidelity)) {
      need_analytical = true;
      any_auto = any_auto || p.params.fidelity == Fidelity::kAuto;
    } else {
      need_cycle = true;
    }
  }
  need_cycle = need_cycle || (any_auto && promote_top > 0);

  PhaseBaselines analytical_baseline;
  PhaseBaselines cycle_baseline;
  if (need_analytical) {
    PlatformParams p = points.front().params;
    p.kind = SystemKind::kNvfiMesh;
    p.fidelity = Fidelity::kAnalytical;
    analytical_baseline = phase_baselines(sim.run(profile, p));
  }
  if (need_cycle) {
    PlatformParams p = points.front().params;
    p.kind = SystemKind::kNvfiMesh;
    p.fidelity = Fidelity::kCycleAccurate;
    cycle_baseline = phase_baselines(sim.run(profile, p));
  }

  parallel_for(points.size(), threads, [&](std::size_t i) {
    DesignPointResult& r = out.points[i];
    r.label = points[i].label;
    const PlatformParams& params = points[i].params;
    r.explored = sim.run(profile, params,
                         analytical_band(params.fidelity)
                             ? analytical_baseline
                             : cycle_baseline);
  });

  for (std::size_t i = 1; i < out.points.size(); ++i) {
    if (out.points[i].explored.edp_js() <
        out.points[out.argmin_explored].explored.edp_js()) {
      out.argmin_explored = i;
    }
  }

  // Promote the best kAuto points to cycle-accurate confirmation runs.
  std::vector<std::size_t> eligible;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].params.fidelity == Fidelity::kAuto) eligible.push_back(i);
  }
  std::stable_sort(eligible.begin(), eligible.end(),
                   [&](std::size_t a, std::size_t b) {
                     return out.points[a].explored.edp_js() <
                            out.points[b].explored.edp_js();
                   });
  if (eligible.size() > promote_top) eligible.resize(promote_top);

  parallel_for(eligible.size(), threads, [&](std::size_t k) {
    const std::size_t i = eligible[k];
    PlatformParams confirm = points[i].params;
    confirm.fidelity = Fidelity::kCycleAccurate;
    out.points[i].confirmed = sim.run(profile, confirm, cycle_baseline);
    out.points[i].promoted = true;
  });
  out.promotions = eligible.size();
  if (!eligible.empty()) {
    NetworkEvaluator* evaluator = points.front().params.net_eval;
    for (std::size_t k = 0; k < eligible.size(); ++k) {
      if (evaluator != nullptr) {
        evaluator->note_promotion(points.front().params.telemetry);
      }
    }
    out.argmin_confirmed = eligible.front();
    for (std::size_t i : eligible) {
      if (out.points[i].confirmed.edp_js() <
          out.points[out.argmin_confirmed].confirmed.edp_js()) {
        out.argmin_confirmed = i;
      }
    }
  } else {
    out.argmin_confirmed = out.argmin_explored;
  }
  return out;
}

}  // namespace vfimr::sysmodel
