#include "sysmodel/sweep.hpp"

#include <algorithm>
#include <numeric>

#include "common/parallel_for.hpp"
#include "common/require.hpp"
#include "sysmodel/net_eval.hpp"

namespace vfimr::sysmodel {

std::vector<SystemComparison> sweep_comparisons(
    const std::vector<workload::AppProfile>& profiles,
    const FullSystemSim& sim, const PlatformParams& base_params,
    std::size_t threads) {
  if (threads == 0) threads = default_parallelism();
  std::vector<SystemComparison> out(profiles.size());
  parallel_for(profiles.size(), threads, [&](std::size_t i) {
    out[i] = compare_systems(profiles[i], sim, base_params);
  });
  return out;
}

std::vector<SystemReport> run_batch(const FullSystemSim& sim,
                                    const std::vector<BatchRequest>& requests,
                                    std::size_t threads) {
  for (const BatchRequest& r : requests) {
    VFIMR_REQUIRE_MSG(r.profile != nullptr,
                      "run_batch request has a null profile");
  }
  if (threads == 0) threads = default_parallelism();
  std::vector<SystemReport> out(requests.size());
  parallel_for(requests.size(), threads, [&](std::size_t i) {
    out[i] = sim.run(*requests[i].profile, requests[i].params,
                     requests[i].baselines);
  });
  return out;
}

AutoComparison compare_systems_auto(const workload::AppProfile& profile,
                                    const FullSystemSim& sim,
                                    const PlatformParams& base_params) {
  AutoComparison out;

  // Explore all three systems in the analytical band.
  PlatformParams explore = base_params;
  explore.fidelity = Fidelity::kAuto;
  out.explored = compare_systems(profile, sim, explore);

  const SystemReport* reports[] = {&out.explored.nvfi_mesh,
                                   &out.explored.vfi_mesh,
                                   &out.explored.vfi_winoc};
  const SystemKind kinds[] = {SystemKind::kNvfiMesh, SystemKind::kVfiMesh,
                              SystemKind::kVfiWinoc};
  std::size_t best = 0;
  for (std::size_t i = 1; i < 3; ++i) {
    if (reports[i]->edp_js() < reports[best]->edp_js()) best = i;
  }
  out.frontier = kinds[best];

  // Confirm cycle-accurately.  The frontier EDP is only meaningful relative
  // to a baseline of the same band, so the NVFI reference is re-run
  // cycle-accurately too (one promotion each).
  PlatformParams confirm = base_params;
  confirm.fidelity = Fidelity::kCycleAccurate;
  confirm.kind = SystemKind::kNvfiMesh;
  out.confirmed_baseline = sim.run(profile, confirm);
  if (base_params.net_eval != nullptr) {
    base_params.net_eval->note_promotion(base_params.telemetry);
  }
  if (out.frontier == SystemKind::kNvfiMesh) {
    out.confirmed = out.confirmed_baseline;
    return out;
  }
  const PhaseBaselines baseline = phase_baselines(out.confirmed_baseline);
  confirm.kind = out.frontier;
  out.confirmed = sim.run(profile, confirm, baseline);
  if (base_params.net_eval != nullptr) {
    base_params.net_eval->note_promotion(base_params.telemetry);
  }
  return out;
}

DesignSpaceResult sweep_design_space(const workload::AppProfile& profile,
                                     const FullSystemSim& sim,
                                     const std::vector<SweepPoint>& points,
                                     std::size_t promote_top,
                                     std::size_t threads) {
  if (threads == 0) threads = default_parallelism();
  DesignSpaceResult out;
  out.points.resize(points.size());
  if (points.empty()) return out;

  // One NVFI-mesh reference per band, derived from the first point's
  // params: exploration compares analytical latencies against an analytical
  // baseline (errors largely cancel in the ratio), confirmations against a
  // cycle-accurate one.
  bool need_analytical = false;
  bool need_cycle = false;
  bool any_auto = false;
  for (const SweepPoint& p : points) {
    if (analytical_band(p.params.fidelity)) {
      need_analytical = true;
      any_auto = any_auto || p.params.fidelity == Fidelity::kAuto;
    } else {
      need_cycle = true;
    }
  }
  need_cycle = need_cycle || (any_auto && promote_top > 0);

  PhaseBaselines analytical_baseline;
  PhaseBaselines cycle_baseline;
  if (need_analytical) {
    PlatformParams p = points.front().params;
    p.kind = SystemKind::kNvfiMesh;
    p.fidelity = Fidelity::kAnalytical;
    analytical_baseline = phase_baselines(sim.run(profile, p));
  }
  if (need_cycle) {
    PlatformParams p = points.front().params;
    p.kind = SystemKind::kNvfiMesh;
    p.fidelity = Fidelity::kCycleAccurate;
    cycle_baseline = phase_baselines(sim.run(profile, p));
  }

  parallel_for(points.size(), threads, [&](std::size_t i) {
    DesignPointResult& r = out.points[i];
    r.label = points[i].label;
    const PlatformParams& params = points[i].params;
    r.explored = sim.run(profile, params,
                         analytical_band(params.fidelity)
                             ? analytical_baseline
                             : cycle_baseline);
  });

  for (std::size_t i = 1; i < out.points.size(); ++i) {
    if (out.points[i].explored.edp_js() <
        out.points[out.argmin_explored].explored.edp_js()) {
      out.argmin_explored = i;
    }
  }

  // Promote the best kAuto points to cycle-accurate confirmation runs.
  std::vector<std::size_t> eligible;
  for (std::size_t i = 0; i < points.size(); ++i) {
    if (points[i].params.fidelity == Fidelity::kAuto) eligible.push_back(i);
  }
  std::stable_sort(eligible.begin(), eligible.end(),
                   [&](std::size_t a, std::size_t b) {
                     return out.points[a].explored.edp_js() <
                            out.points[b].explored.edp_js();
                   });
  if (eligible.size() > promote_top) eligible.resize(promote_top);

  parallel_for(eligible.size(), threads, [&](std::size_t k) {
    const std::size_t i = eligible[k];
    PlatformParams confirm = points[i].params;
    confirm.fidelity = Fidelity::kCycleAccurate;
    out.points[i].confirmed = sim.run(profile, confirm, cycle_baseline);
    out.points[i].promoted = true;
  });
  out.promotions = eligible.size();
  if (!eligible.empty()) {
    NetworkEvaluator* evaluator = points.front().params.net_eval;
    for (std::size_t k = 0; k < eligible.size(); ++k) {
      if (evaluator != nullptr) {
        evaluator->note_promotion(points.front().params.telemetry);
      }
    }
    out.argmin_confirmed = eligible.front();
    for (std::size_t i : eligible) {
      if (out.points[i].confirmed.edp_js() <
          out.points[out.argmin_confirmed].confirmed.edp_js()) {
        out.argmin_confirmed = i;
      }
    }
  } else {
    out.argmin_confirmed = out.argmin_explored;
  }
  return out;
}

}  // namespace vfimr::sysmodel
