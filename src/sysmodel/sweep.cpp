#include "sysmodel/sweep.hpp"

#include "common/parallel_for.hpp"

namespace vfimr::sysmodel {

std::vector<SystemComparison> sweep_comparisons(
    const std::vector<workload::AppProfile>& profiles,
    const FullSystemSim& sim, const PlatformParams& base_params,
    std::size_t threads) {
  if (threads == 0) threads = default_parallelism();
  std::vector<SystemComparison> out(profiles.size());
  parallel_for(profiles.size(), threads, [&](std::size_t i) {
    out[i] = compare_systems(profiles[i], sim, base_params);
  });
  return out;
}

}  // namespace vfimr::sysmodel
