#pragma once
// Full-system simulation: couples the VFI design, the task-level execution
// model and the cycle-accurate NoC into the paper's reported metrics —
// per-phase execution time (Fig. 7), full-system energy and EDP (Fig. 8).
//
// Modeling summary (details in DESIGN.md):
//  * The NoC is simulated cycle-accurately under the application's mapped
//    traffic; its average packet latency, relative to the NVFI-mesh
//    baseline, scales the network-sensitive share of every task's memory
//    time (remote-L2 model).  Phase-resolved profiles (per-phase traffic
//    matrices) get one evaluation, latency ratio and mem_scale per phase —
//    the PhasePlan -> PhaseResult pipeline of DESIGN.md §11 — optionally
//    memoized through a shared NetworkEvaluator.
//  * Map/Reduce phases run through the deterministic work-stealing task
//    simulator (Eq. 3 cap active on VFI systems); LibInit and Merge are
//    serial master-thread stages.
//  * Core energy integrates P(u, V, f) per thread per phase, with per-thread
//    utilization taken from the application profile and stretched by the
//    thread's busy-time dilation at its VFI frequency.
//  * Network energy = (measured energy per flit) x (flits implied by the
//    traffic rate over the run) + switch/WI leakage.

#include <array>

#include "power/core_power.hpp"
#include "power/noc_power.hpp"
#include "power/vf_table.hpp"
#include "sysmodel/platform.hpp"
#include "sysmodel/task_sim.hpp"
#include "workload/profile.hpp"

namespace vfimr::sysmodel {

struct PhaseBreakdown {
  double lib_init_s = 0.0;
  double map_s = 0.0;
  double reduce_s = 0.0;
  double merge_s = 0.0;

  double total_s() const { return lib_init_s + map_s + reduce_s + merge_s; }
};

/// Degraded-mode accounting accumulated over a full-system run; every field
/// is zero when PlatformParams::faults is the default (fault-free) spec.
struct ResilienceStats {
  std::uint64_t core_failures = 0;      ///< core deaths across all phases
  std::uint64_t tasks_reexecuted = 0;   ///< task re-runs after core deaths
  double wasted_core_seconds = 0.0;     ///< partial work discarded at deaths
  std::uint64_t noc_fault_events = 0;   ///< NoC fault transitions applied
  std::uint64_t noc_route_rebuilds = 0; ///< degraded route recomputations
  std::uint64_t noc_retry_backoffs = 0; ///< unroutable-head backoff waits
  std::uint64_t packets_lost = 0;       ///< packets purged after retry budget
  std::uint64_t flits_lost = 0;         ///< flits removed with them
  /// Wall-clock added to exec_s for lost-packet timeouts: the sampled loss
  /// rate, extrapolated over the run, stalls the destination core for
  /// loss_timeout_cycles per loss (stalls spread evenly across cores).
  double net_stall_seconds = 0.0;

  bool any() const {
    return core_failures > 0 || tasks_reexecuted > 0 ||
           noc_fault_events > 0 || packets_lost > 0;
  }
};

/// One step of the phase-resolved pipeline: the traffic a MapReduce phase
/// offers to the NoC and its nominal share of the run.  Plans are built
/// from AppProfile::phase_traffic at the start of FullSystemSim::run;
/// zero-weight phases (e.g. LR's missing merge) are never simulated.
struct PhasePlan {
  workload::Phase phase = workload::Phase::kMap;
  double weight = 0.0;               ///< nominal time share of the run
  double rate_packets_per_cycle = 0.0;
  Matrix node_traffic;               ///< phase traffic mapped onto NoC nodes
};

/// Measured outcome of one phase: its own network evaluation and the
/// coupling quantities derived from it.
struct PhaseResult {
  workload::Phase phase = workload::Phase::kMap;
  bool evaluated = false;  ///< false: zero-weight phase, never simulated
  NetworkEval net;
  double baseline_latency_cycles = 0.0;  ///< reference for this phase
  double mem_scale = 1.0;                ///< memory-time multiplier applied
  double time_s = 0.0;                   ///< wall time over all iterations
  double net_dynamic_j = 0.0;            ///< dynamic NoC energy attributed
  double rate_packets_per_cycle = 0.0;
};

/// Per-phase reference latencies (from an NVFI-mesh run of the same
/// profile).  A zero entry makes that phase use this run's own latency as
/// its baseline — correct for the NVFI baseline itself.
struct PhaseBaselines {
  std::array<double, workload::kPhaseCount> latency_cycles{};
};

struct SystemReport {
  SystemKind kind = SystemKind::kNvfiMesh;
  PhaseBreakdown phases;            ///< summed over MapReduce iterations
  double exec_s = 0.0;              ///< total execution time
  double core_energy_j = 0.0;
  double net_dynamic_j = 0.0;
  double net_static_j = 0.0;
  /// Whole-run network figures.  Phase-resolved runs report the
  /// packet-weighted combination of the per-phase evaluations (metrics
  /// counters are summed over the phase simulations).
  NetworkEval net;
  /// Per-phase evaluations, latencies and mem_scales.  On a run without
  /// phase traffic every entry mirrors the single whole-run evaluation.
  std::array<PhaseResult, workload::kPhaseCount> phase_results{};
  bool phase_resolved = false;  ///< true when the 4-phase pipeline ran
  ResilienceStats resilience;
  double baseline_latency_cycles = 0.0;  ///< NVFI-mesh latency used as ref
  double mem_scale = 1.0;                ///< memory-time multiplier applied
  bool has_vfi = false;
  vfi::VfiDesign vfi;

  double total_energy_j() const {
    return core_energy_j + net_dynamic_j + net_static_j;
  }
  double edp_js() const { return total_energy_j() * exec_s; }

  const PhaseResult& phase_result(workload::Phase p) const {
    return phase_results[static_cast<std::size_t>(p)];
  }
};

/// The per-phase baselines a VFI run should compare against: the phase
/// latencies measured by an NVFI-mesh report of the same profile.
PhaseBaselines phase_baselines(const SystemReport& nvfi_report);

class FullSystemSim {
 public:
  struct Models {
    power::CorePowerModel core{};
    power::NocPowerModel noc{};
  };

  /// Default power models + the standard V/F ladder.
  FullSystemSim();
  explicit FullSystemSim(Models models,
                         const power::VfTable& table = power::VfTable::standard());

  /// Simulate `profile` on the platform described by `params`.
  /// `baseline_latency_cycles`: the NVFI-mesh average packet latency for
  /// this application; pass 0 to use this run's own latency as the baseline
  /// (correct when params.kind == kNvfiMesh).  The scalar is applied to
  /// every phase; prefer the PhaseBaselines overload for phase-resolved
  /// profiles.
  SystemReport run(const workload::AppProfile& profile,
                   const PlatformParams& params,
                   double baseline_latency_cycles = 0.0) const;

  /// Phase-resolved baselines (see phase_baselines()).
  SystemReport run(const workload::AppProfile& profile,
                   const PlatformParams& params,
                   const PhaseBaselines& baselines) const;

  const power::VfTable& vf_table() const { return *table_; }
  const Models& models() const { return models_; }

 private:
  Models models_;
  const power::VfTable* table_;
};

/// Traffic-weighted average V^2 scaling of the interconnect under a VFI
/// design: each packet spends roughly half its hops in the source island and
/// half in the destination island, so its energy scales with the mean of the
/// two islands' V^2 relative to `v_nom`.  Iterates the full traffic matrix
/// (any platform size) and requires `node_cluster` to cover every node and
/// every referenced cluster to have a V/F point.  Returns 1.0 when the
/// matrix carries no traffic.  Exposed for tests.
double vfi_network_v2_factor(const Matrix& node_traffic,
                             const std::vector<std::size_t>& node_cluster,
                             const std::vector<power::VfPoint>& cluster_vf,
                             double v_nom);

/// The three-system comparison used by most figures.  Runs NVFI mesh first
/// and feeds its latency to the VFI systems as the baseline.
struct SystemComparison {
  SystemReport nvfi_mesh;
  SystemReport vfi_mesh;
  SystemReport vfi_winoc;
};

SystemComparison compare_systems(const workload::AppProfile& profile,
                                 const FullSystemSim& sim,
                                 const PlatformParams& base_params = {});

}  // namespace vfimr::sysmodel
