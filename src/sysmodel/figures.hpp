#pragma once
// Golden-figure metric extraction — the single source of truth for the
// regression guard protecting the paper-reproduction results.
//
// compute_figure_data() runs the full three-system comparison for all six
// applications (the expensive step); extract_metrics() flattens it into the
// named scalar metrics of Fig. 2 (utilization), Fig. 7 (phase breakdown),
// Fig. 8 (full-system EDP) and Table 2 (per-cluster V/F assignment).  The
// `bench/golden_figures` tool writes these maps to results/golden/*.json;
// tests/test_golden_figures.cpp recomputes them and compares within
// tolerance, so a refactor that silently shifts the 33.7 % EDP-saving
// headline fails the suite instead of landing unnoticed.
//
// FigurePerturbation exists to *prove the guard bites*: scaling e.g. map
// time by 1.05 must push fig7/fig8 metrics out of tolerance.

#include <vector>

#include "common/json_lite.hpp"
#include "sysmodel/system_sim.hpp"
#include "workload/profile.hpp"

namespace vfimr::sysmodel {

struct FigureParams {
  PlatformParams platform{};            ///< same defaults as the benches
  workload::ProfileParams profile{};
  /// Worker threads for the per-app comparison sweep; 0 picks
  /// default_parallelism() (VFIMR_THREADS env or the hardware core count).
  /// The result is bit-identical for any value.
  std::size_t threads = 0;
};

/// Raw per-app comparison results, computed once and reused for both the
/// golden and the perturbed metric extraction.
struct FigureData {
  std::vector<workload::AppProfile> profiles;
  std::vector<SystemComparison> comparisons;  ///< parallel to `profiles`
};

FigureData compute_figure_data(const FigureParams& params = {});

/// Deliberate metric distortions for guard self-tests.  Defaults are the
/// identity (no perturbation).
struct FigurePerturbation {
  double map_time_scale = 1.0;     ///< scales every system's map phase time
  double core_energy_scale = 1.0;  ///< scales every system's core energy
};

/// All four figure groups as flat metric maps (key conventions:
/// "fig7.<app>.<system>.<phase>", "fig8.<app>.<metric>",
/// "fig8.summary.<metric>", "table2.<app>.cluster<j>.<vfi>_ghz").
struct FigureMetrics {
  json::MetricMap fig2;
  json::MetricMap fig7;
  json::MetricMap fig8;
  json::MetricMap table2;
};

FigureMetrics extract_metrics(const FigureData& data,
                              const FigurePerturbation& perturb = {});

}  // namespace vfimr::sysmodel
