#include "sysmodel/platform.hpp"

#include "common/require.hpp"
#include "store/codec.hpp"
#include "store/eval_store.hpp"
#include "sysmodel/net_eval.hpp"
#include "winoc/thread_mapping.hpp"

namespace vfimr::sysmodel {

std::string telemetry_label(const workload::AppProfile& profile,
                            const PlatformParams& params) {
  if (!params.telemetry_label.empty()) return params.telemetry_label;
  return profile.name() + " / " + system_name(params.kind);
}

std::string system_name(SystemKind kind) {
  switch (kind) {
    case SystemKind::kNvfiMesh:
      return "NVFI Mesh";
    case SystemKind::kVfiMesh:
      return "VFI Mesh";
    case SystemKind::kVfiWinoc:
      return "VFI WiNoC";
  }
  VFIMR_REQUIRE(false);
  return {};
}

std::string fidelity_name(Fidelity fidelity) {
  switch (fidelity) {
    case Fidelity::kCycleAccurate:
      return "cycle";
    case Fidelity::kAnalytical:
      return "analytical";
    case Fidelity::kAuto:
      return "auto";
  }
  VFIMR_REQUIRE(false);
  return {};
}

bool parse_fidelity(const std::string& name, Fidelity& out) {
  if (name == "cycle") {
    out = Fidelity::kCycleAccurate;
  } else if (name == "analytical") {
    out = Fidelity::kAnalytical;
  } else if (name == "auto") {
    out = Fidelity::kAuto;
  } else {
    return false;
  }
  return true;
}

BuiltPlatform build_platform(const workload::AppProfile& profile,
                             const PlatformParams& params,
                             const power::VfTable& table,
                             const vfi::VfiDesign* precomputed) {
  VFIMR_REQUIRE_MSG(profile.threads == 64,
                    "platform construction targets the 8x8 die");
  BuiltPlatform built;

  if (params.kind == SystemKind::kNvfiMesh) {
    // Baseline: all cores at f_max on the mesh.  The baseline also gets a
    // locality-optimized thread mapping (SA over quadrant blocks) so the
    // NVFI-vs-VFI comparison isolates the VFI/interconnect effects rather
    // than penalizing the baseline with a naive placement.
    built.topology = noc::make_mesh(8, 8);
    built.routing = std::make_unique<noc::XyRouting>(built.topology.graph, 8, 8);
    std::vector<std::size_t> blocks(64);
    for (std::size_t t = 0; t < 64; ++t) blocks[t] = t / 16;
    Rng rng{params.smallworld.seed};
    built.thread_to_node =
        winoc::map_threads_min_hop(profile.traffic, blocks, rng);
    built.node_traffic =
        winoc::map_traffic(profile.traffic, built.thread_to_node, 64);
    return built;
  }

  // VFI systems share the Fig. 3 design flow (skipped when the caller
  // supplies a stored design — see the header contract).
  built.has_vfi = true;
  built.vfi = precomputed != nullptr
                  ? *precomputed
                  : vfi::design_vfi(profile.utilization, profile.traffic,
                                    profile.master_threads, table, params.vfi);

  if (params.kind == SystemKind::kVfiMesh) {
    Rng rng{params.smallworld.seed};
    built.topology = noc::make_mesh(8, 8);
    built.routing = std::make_unique<noc::XyRouting>(built.topology.graph, 8, 8);
    built.thread_to_node =
        winoc::map_threads_min_hop(profile.traffic, built.vfi.assignment, rng);
    built.node_traffic =
        winoc::map_traffic(profile.traffic, built.thread_to_node, 64);
    return built;
  }

  // VFI WiNoC.
  winoc::WinocDesign design = winoc::build_winoc(
      profile.traffic, built.vfi.assignment, params.placement,
      params.smallworld);
  built.topology = std::move(design.topology);
  built.wireless = std::move(design.wireless);
  built.thread_to_node = std::move(design.thread_to_node);
  built.node_traffic = std::move(design.node_traffic);
  built.wi_count = built.wireless.interfaces.size();
  built.routing = std::make_unique<noc::UpDownRouting>(built.topology.graph, 2.0);
  return built;
}

namespace {

/// Raw-byte key serialization, mirroring net_eval's cache-key idiom:
/// exactness over compactness, so no two different platform constructions
/// can ever alias one entry.
template <typename T>
void put(std::string& key, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  key.append(reinterpret_cast<const char*>(&v), sizeof(T));
}

std::string platform_key(const workload::AppProfile& profile,
                         const PlatformParams& params,
                         const power::VfTable& table) {
  std::string key;
  key.reserve(256 + profile.traffic.data().size() * sizeof(double));

  // Workload content consumed by the design flow: traffic drives thread
  // mapping and WiNoC layout, utilization and masters drive the VFI design.
  put(key, static_cast<std::uint32_t>(profile.app));
  put(key, profile.threads);
  put(key, profile.traffic.rows());
  put(key, profile.traffic.cols());
  key.append(reinterpret_cast<const char*>(profile.traffic.data().data()),
             profile.traffic.data().size() * sizeof(double));
  put(key, profile.utilization.size());
  for (const double u : profile.utilization) put(key, u);
  put(key, profile.master_threads.size());
  for (const std::size_t m : profile.master_threads) put(key, m);

  // Design knobs.  Field-by-field: struct padding must not leak into keys.
  put(key, static_cast<std::uint32_t>(params.kind));
  put(key, static_cast<std::uint32_t>(params.placement));
  put(key, params.smallworld.k_intra);
  put(key, params.smallworld.k_inter);
  put(key, params.smallworld.k_max);
  put(key, params.smallworld.alpha);
  put(key, params.smallworld.channels);
  put(key, params.smallworld.wis_per_cluster);
  put(key, params.smallworld.seed);
  put(key, params.vfi.clusters);
  put(key, params.vfi.select.util_target);
  put(key, params.vfi.anneal.iterations);
  put(key, params.vfi.anneal.t_initial);
  put(key, params.vfi.anneal.t_final);
  put(key, params.vfi.anneal.seed);
  put(key, params.vfi.anneal.restarts);

  // V/F ladder (feeds the VFI point selection).
  put(key, table.size());
  for (std::size_t i = 0; i < table.size(); ++i) put(key, table[i]);
  return key;
}

}  // namespace

std::shared_ptr<const BuiltPlatform> PlatformCache::get(
    const workload::AppProfile& profile, const PlatformParams& params,
    const power::VfTable& table) {
  const std::string key = platform_key(profile, params, table);
  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock{mutex_};
    auto [it, fresh] = cache_.try_emplace(key);
    if (fresh) it->second = std::make_shared<Entry>();
    entry = it->second;
  }

  // Classify under the entry mutex, where the resolving tier is known
  // (memory -> disk -> design flow); `misses()` keeps meaning "design flows
  // actually run".  NVFI platforms skip the disk tier: their construction
  // has no expensive design to save, and kind is in the key so they can
  // never collide with a stored VFI design.
  std::lock_guard<std::mutex> lock{entry->mutex};
  if (entry->value != nullptr) {
    hits_.fetch_add(1, std::memory_order_relaxed);
    return entry->value;
  }
  const bool use_store =
      store_ != nullptr && params.kind != SystemKind::kNvfiMesh;
  if (use_store) {
    std::string bytes;
    vfi::VfiDesign design;
    if (store_->get(
            store::domain_key(store::KeyDomain::kPlatformDesign, key),
            bytes) &&
        store::decode_vfi_design(bytes, design)) {
      disk_hits_.fetch_add(1, std::memory_order_relaxed);
      entry->value = std::make_shared<const BuiltPlatform>(
          build_platform(profile, params, table, &design));
      return entry->value;
    }
    disk_misses_.fetch_add(1, std::memory_order_relaxed);
  }
  misses_.fetch_add(1, std::memory_order_relaxed);
  entry->value = std::make_shared<const BuiltPlatform>(
      build_platform(profile, params, table));
  if (use_store) {
    store_->put(store::domain_key(store::KeyDomain::kPlatformDesign, key),
                store::encode_vfi_design(entry->value->vfi));
  }
  return entry->value;
}

std::size_t PlatformCache::size() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return cache_.size();
}

NetworkEval evaluate_network(const BuiltPlatform& platform,
                             const workload::AppProfile& profile,
                             const PlatformParams& params,
                             const power::NocPowerModel& noc_power) {
  // The uncached core lives in net_eval.cpp so the memoizing
  // NetworkEvaluator and this whole-run convenience wrapper share one
  // implementation.
  return evaluate_network_banded(platform, platform.node_traffic,
                                 profile.packet_flits, params, noc_power,
                                 telemetry_label(profile, params));
}

}  // namespace vfimr::sysmodel
