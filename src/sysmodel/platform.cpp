#include "sysmodel/platform.hpp"

#include <numeric>

#include "common/require.hpp"
#include "noc/traffic.hpp"
#include "winoc/thread_mapping.hpp"

namespace vfimr::sysmodel {

std::string telemetry_label(const workload::AppProfile& profile,
                            const PlatformParams& params) {
  if (!params.telemetry_label.empty()) return params.telemetry_label;
  return profile.name() + " / " + system_name(params.kind);
}

std::string system_name(SystemKind kind) {
  switch (kind) {
    case SystemKind::kNvfiMesh:
      return "NVFI Mesh";
    case SystemKind::kVfiMesh:
      return "VFI Mesh";
    case SystemKind::kVfiWinoc:
      return "VFI WiNoC";
  }
  VFIMR_REQUIRE(false);
  return {};
}

BuiltPlatform build_platform(const workload::AppProfile& profile,
                             const PlatformParams& params,
                             const power::VfTable& table) {
  VFIMR_REQUIRE_MSG(profile.threads == 64,
                    "platform construction targets the 8x8 die");
  BuiltPlatform built;

  if (params.kind == SystemKind::kNvfiMesh) {
    // Baseline: all cores at f_max on the mesh.  The baseline also gets a
    // locality-optimized thread mapping (SA over quadrant blocks) so the
    // NVFI-vs-VFI comparison isolates the VFI/interconnect effects rather
    // than penalizing the baseline with a naive placement.
    built.topology = noc::make_mesh(8, 8);
    built.routing = std::make_unique<noc::XyRouting>(built.topology.graph, 8, 8);
    std::vector<std::size_t> blocks(64);
    for (std::size_t t = 0; t < 64; ++t) blocks[t] = t / 16;
    Rng rng{params.smallworld.seed};
    built.thread_to_node =
        winoc::map_threads_min_hop(profile.traffic, blocks, rng);
    built.node_traffic =
        winoc::map_traffic(profile.traffic, built.thread_to_node, 64);
    return built;
  }

  // VFI systems share the Fig. 3 design flow.
  built.has_vfi = true;
  built.vfi = vfi::design_vfi(profile.utilization, profile.traffic,
                              profile.master_threads, table, params.vfi);

  if (params.kind == SystemKind::kVfiMesh) {
    Rng rng{params.smallworld.seed};
    built.topology = noc::make_mesh(8, 8);
    built.routing = std::make_unique<noc::XyRouting>(built.topology.graph, 8, 8);
    built.thread_to_node =
        winoc::map_threads_min_hop(profile.traffic, built.vfi.assignment, rng);
    built.node_traffic =
        winoc::map_traffic(profile.traffic, built.thread_to_node, 64);
    return built;
  }

  // VFI WiNoC.
  winoc::WinocDesign design = winoc::build_winoc(
      profile.traffic, built.vfi.assignment, params.placement,
      params.smallworld);
  built.topology = std::move(design.topology);
  built.wireless = std::move(design.wireless);
  built.thread_to_node = std::move(design.thread_to_node);
  built.node_traffic = std::move(design.node_traffic);
  built.wi_count = built.wireless.interfaces.size();
  built.routing = std::make_unique<noc::UpDownRouting>(built.topology.graph, 2.0);
  return built;
}

NetworkEval evaluate_network(const BuiltPlatform& platform,
                             const workload::AppProfile& profile,
                             const PlatformParams& params,
                             const power::NocPowerModel& noc_power) {
  VFIMR_REQUIRE_MSG(params.network_clock_hz > 0.0,
                    "network_clock_hz must be positive, got "
                        << params.network_clock_hz);
  VFIMR_REQUIRE_MSG(params.router_pipeline_cycles >= 1,
                    "router_pipeline_cycles must be at least 1");
  VFIMR_REQUIRE_MSG(params.sim_cycles > 0,
                    "sim_cycles must be positive (no injection window)");
  noc::SimConfig sim_cfg = params.noc_sim;
  if (params.telemetry != nullptr && sim_cfg.telemetry == nullptr) {
    sim_cfg.telemetry = params.telemetry;
    sim_cfg.telemetry_label = telemetry_label(profile, params);
  }
  if (platform.has_vfi && sim_cfg.node_cluster.empty()) {
    // VFI systems pay mixed-clock synchronizer latency at island borders.
    sim_cfg.node_cluster = winoc::quadrant_clusters();
  }
  if (params.faults.any_noc() && sim_cfg.faults.empty()) {
    // Expand the rate-based spec into a concrete schedule over this
    // platform's actual links / switches / WIs.  Seeded by (spec, traffic
    // seed) so the same PlatformParams replays bit-identically.
    const auto& g = platform.topology.graph;
    std::vector<std::uint32_t> edge_ids(g.edge_count());
    std::iota(edge_ids.begin(), edge_ids.end(), 0u);
    std::vector<std::uint32_t> router_ids(g.node_count());
    std::iota(router_ids.begin(), router_ids.end(), 0u);
    std::vector<std::uint32_t> wi_ids;
    for (const auto& wi : platform.wireless.interfaces) {
      wi_ids.push_back(static_cast<std::uint32_t>(wi.node));
    }
    // Faults are drawn over the injection window only: the drain phase ends
    // as soon as the network empties (usually a handful of cycles), so
    // events scheduled past sim_cycles would mostly never fire.
    sim_cfg.faults = faults::make_noc_schedule(
        params.faults, edge_ids, router_ids, wi_ids, params.sim_cycles,
        params.faults.seed ^ params.traffic_seed);
  }
  noc::Network net{platform.topology, *platform.routing, sim_cfg,
                   platform.wireless};
  noc::MatrixTraffic gen{platform.node_traffic, profile.packet_flits,
                         params.traffic_seed};
  net.run(&gen, params.sim_cycles);
  const bool drained = net.drain(params.drain_cycles);

  NetworkEval eval;
  eval.metrics = net.metrics();
  eval.drained = drained;
  eval.avg_latency_cycles = eval.metrics.avg_latency();
  eval.flits_delivered = eval.metrics.flits_ejected;
  if (eval.flits_delivered > 0 && params.router_pipeline_cycles > 1) {
    const double wire_hops_per_flit =
        static_cast<double>(eval.metrics.energy.wire_hops) /
        static_cast<double>(eval.flits_delivered);
    eval.avg_latency_cycles +=
        wire_hops_per_flit *
        static_cast<double>(params.router_pipeline_cycles - 1);
  }
  // Lost packets are deliberately NOT folded into avg_latency_cycles: the
  // delivered packets' average already reflects the degraded network (longer
  // reroutes, backoff waits), while a loss is a *stall* of the destination
  // core, charged as execution time in FullSystemSim::run.  Folding a
  // timeout that is hundreds of mean latencies into the average would let a
  // brief router outage multiply the whole run's memory time.
  eval.wireless_utilization = eval.metrics.wireless_utilization();
  if (eval.flits_delivered > 0) {
    eval.energy_per_flit_j = noc_power.energy_j(eval.metrics.energy) /
                             static_cast<double>(eval.flits_delivered);
  }
  return eval;
}

}  // namespace vfimr::sysmodel
