#include "sysmodel/platform.hpp"

#include "common/require.hpp"
#include "sysmodel/net_eval.hpp"
#include "winoc/thread_mapping.hpp"

namespace vfimr::sysmodel {

std::string telemetry_label(const workload::AppProfile& profile,
                            const PlatformParams& params) {
  if (!params.telemetry_label.empty()) return params.telemetry_label;
  return profile.name() + " / " + system_name(params.kind);
}

std::string system_name(SystemKind kind) {
  switch (kind) {
    case SystemKind::kNvfiMesh:
      return "NVFI Mesh";
    case SystemKind::kVfiMesh:
      return "VFI Mesh";
    case SystemKind::kVfiWinoc:
      return "VFI WiNoC";
  }
  VFIMR_REQUIRE(false);
  return {};
}

BuiltPlatform build_platform(const workload::AppProfile& profile,
                             const PlatformParams& params,
                             const power::VfTable& table) {
  VFIMR_REQUIRE_MSG(profile.threads == 64,
                    "platform construction targets the 8x8 die");
  BuiltPlatform built;

  if (params.kind == SystemKind::kNvfiMesh) {
    // Baseline: all cores at f_max on the mesh.  The baseline also gets a
    // locality-optimized thread mapping (SA over quadrant blocks) so the
    // NVFI-vs-VFI comparison isolates the VFI/interconnect effects rather
    // than penalizing the baseline with a naive placement.
    built.topology = noc::make_mesh(8, 8);
    built.routing = std::make_unique<noc::XyRouting>(built.topology.graph, 8, 8);
    std::vector<std::size_t> blocks(64);
    for (std::size_t t = 0; t < 64; ++t) blocks[t] = t / 16;
    Rng rng{params.smallworld.seed};
    built.thread_to_node =
        winoc::map_threads_min_hop(profile.traffic, blocks, rng);
    built.node_traffic =
        winoc::map_traffic(profile.traffic, built.thread_to_node, 64);
    return built;
  }

  // VFI systems share the Fig. 3 design flow.
  built.has_vfi = true;
  built.vfi = vfi::design_vfi(profile.utilization, profile.traffic,
                              profile.master_threads, table, params.vfi);

  if (params.kind == SystemKind::kVfiMesh) {
    Rng rng{params.smallworld.seed};
    built.topology = noc::make_mesh(8, 8);
    built.routing = std::make_unique<noc::XyRouting>(built.topology.graph, 8, 8);
    built.thread_to_node =
        winoc::map_threads_min_hop(profile.traffic, built.vfi.assignment, rng);
    built.node_traffic =
        winoc::map_traffic(profile.traffic, built.thread_to_node, 64);
    return built;
  }

  // VFI WiNoC.
  winoc::WinocDesign design = winoc::build_winoc(
      profile.traffic, built.vfi.assignment, params.placement,
      params.smallworld);
  built.topology = std::move(design.topology);
  built.wireless = std::move(design.wireless);
  built.thread_to_node = std::move(design.thread_to_node);
  built.node_traffic = std::move(design.node_traffic);
  built.wi_count = built.wireless.interfaces.size();
  built.routing = std::make_unique<noc::UpDownRouting>(built.topology.graph, 2.0);
  return built;
}

NetworkEval evaluate_network(const BuiltPlatform& platform,
                             const workload::AppProfile& profile,
                             const PlatformParams& params,
                             const power::NocPowerModel& noc_power) {
  // The uncached core lives in net_eval.cpp so the memoizing
  // NetworkEvaluator and this whole-run convenience wrapper share one
  // implementation.
  return evaluate_network_traffic(platform, platform.node_traffic,
                                  profile.packet_flits, params, noc_power,
                                  telemetry_label(profile, params));
}

}  // namespace vfimr::sysmodel
