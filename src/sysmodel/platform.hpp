#pragma once
// Platform construction + network evaluation for the three system
// configurations compared throughout the paper:
//   * NVFI Mesh  — baseline: no VFIs, all cores at f_max, 8x8 mesh NoC;
//   * VFI Mesh   — Eq. 1 clustering + V/F assignment, mesh NoC;
//   * VFI WiNoC  — same VFIs over the small-world wireless NoC.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "common/matrix.hpp"
#include "noc/network.hpp"
#include "noc/routing.hpp"
#include "noc/topology.hpp"
#include "power/noc_power.hpp"
#include "power/vf_table.hpp"
#include "sysmodel/task_sim.hpp"
#include "vfi/vf_assign.hpp"
#include "winoc/design.hpp"
#include "workload/profile.hpp"

namespace vfimr::sysmodel {

class NetworkEvaluator;

enum class SystemKind { kNvfiMesh, kVfiMesh, kVfiWinoc };

std::string system_name(SystemKind kind);

struct PlatformParams {
  SystemKind kind = SystemKind::kNvfiMesh;
  /// VFI systems: use the VFI 2 (bottleneck-reassigned) V/F values; false
  /// selects VFI 1 (Fig. 4's comparison).
  bool use_vfi2 = true;
  winoc::PlacementStrategy placement =
      winoc::PlacementStrategy::kMaxWirelessUtilization;
  winoc::SmallWorldParams smallworld{};
  vfi::VfiDesignParams vfi{};
  double network_clock_hz = 1.0e9;
  /// Per-hop switch pipeline depth in cycles.  The event simulator moves a
  /// flit one hop per cycle (throughput-exact for wormhole); the remaining
  /// (depth - 1) cycles per wire hop are added to the measured latency, the
  /// standard correction for multi-stage 65 nm router pipelines.  Wireless
  /// hops bypass intermediate switch pipelines (single mm-wave transfer).
  std::uint32_t router_pipeline_cycles = 4;
  /// Scheduler used on VFI systems (NVFI always runs kPhoenixDefault).
  /// See sysmodel/task_sim.hpp for the two Eq. 3 readings.
  StealingPolicy vfi_stealing = StealingPolicy::kVfiAssignment;
  noc::SimConfig noc_sim{};
  noc::Cycle sim_cycles = 60'000;    ///< measured injection window
  noc::Cycle drain_cycles = 60'000;  ///< post-injection drain budget
  std::uint64_t traffic_seed = 99;
  /// Fault model for the resilience experiments.  NoC rates expand into a
  /// concrete seeded schedule inside evaluate_network (links/routers/WIs of
  /// the built platform); core_fail_prob draws per-phase core failures in
  /// FullSystemSim::run.  The default (all rates zero) is bit-identical to a
  /// fault-free run.
  faults::FaultSpec faults{};
  /// Telemetry sink (nullable, caller-owned; see src/telemetry).  When set,
  /// evaluate_network attaches it to the NoC simulation and
  /// FullSystemSim::run records phase spans, per-core task lifecycles and
  /// VFI island state — all on the simulated-time axis.  Null reproduces
  /// the untraced run bit-identically.
  telemetry::TelemetrySink* telemetry = nullptr;
  /// Process / metric prefix override; empty derives
  /// "<App> / <System>" (e.g. "Kmeans / VFI WiNoC").
  std::string telemetry_label;
  /// Memoizing NoC-evaluation service (nullable, caller-owned, thread-safe;
  /// see sysmodel/net_eval.hpp).  When set, FullSystemSim::run routes every
  /// network evaluation through its content-keyed cache, so identical
  /// evaluations across phases / systems / sweep entries are simulated
  /// once.  Null evaluates fresh each time — bit-identical results either
  /// way.
  NetworkEvaluator* net_eval = nullptr;
  /// Per-phase injection-window length as a fraction of `sim_cycles`, used
  /// by the phase-resolved pipeline (profiles with per-phase traffic).  The
  /// default halves the window: four phase evaluations at half the window
  /// (minus the LibInit == Merge cache hit) cost ~1.5x one whole-run
  /// evaluation instead of 4x.  Profiles without phase traffic always use
  /// the full window.
  double phase_window_scale = 0.5;
};

/// The process/metric prefix a telemetry-enabled run uses: the explicit
/// PlatformParams::telemetry_label, or "<App> / <System>".
std::string telemetry_label(const workload::AppProfile& profile,
                            const PlatformParams& params);

/// A constructed platform, ready for network simulation.
struct BuiltPlatform {
  noc::Topology topology;
  std::unique_ptr<noc::RoutingAlgorithm> routing;
  noc::WirelessConfig wireless;
  std::vector<graph::NodeId> thread_to_node;
  Matrix node_traffic;  ///< thread traffic pushed through the mapping
  vfi::VfiDesign vfi;   ///< meaningful only when has_vfi
  bool has_vfi = false;
  std::size_t wi_count = 0;
};

/// Run the VFI design flow (if applicable), map threads and build the
/// interconnect for `profile` under `params`.
BuiltPlatform build_platform(const workload::AppProfile& profile,
                             const PlatformParams& params,
                             const power::VfTable& table);

/// Aggregate network figures extracted from a cycle-accurate run.
struct NetworkEval {
  double avg_latency_cycles = 0.0;
  double energy_per_flit_j = 0.0;   ///< dynamic NoC energy per delivered flit
  double wireless_utilization = 0.0;
  std::uint64_t flits_delivered = 0;
  bool drained = false;
  noc::Metrics metrics;

  /// Network-only EDP figure of merit: energy/flit x latency (used for the
  /// §7.2 / Fig. 6 network-parameter comparisons).
  double network_edp() const { return energy_per_flit_j * avg_latency_cycles; }
};

/// Drive the platform's NoC with the profile's (mapped) traffic and measure
/// latency and per-flit energy.
NetworkEval evaluate_network(const BuiltPlatform& platform,
                             const workload::AppProfile& profile,
                             const PlatformParams& params,
                             const power::NocPowerModel& noc_power);

}  // namespace vfimr::sysmodel
