#pragma once
// Platform construction + network evaluation for the three system
// configurations compared throughout the paper:
//   * NVFI Mesh  — baseline: no VFIs, all cores at f_max, 8x8 mesh NoC;
//   * VFI Mesh   — Eq. 1 clustering + V/F assignment, mesh NoC;
//   * VFI WiNoC  — same VFIs over the small-world wireless NoC.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>
#include <vector>

#include "common/matrix.hpp"
#include "noc/analytical.hpp"
#include "noc/network.hpp"
#include "noc/routing.hpp"
#include "noc/topology.hpp"
#include "power/noc_power.hpp"
#include "power/vf_table.hpp"
#include "sysmodel/task_sim.hpp"
#include "vfi/vf_assign.hpp"
#include "winoc/design.hpp"
#include "workload/profile.hpp"

namespace vfimr::store {
class EvalStore;
}

namespace vfimr::sysmodel {

class NetworkEvaluator;
class PlatformCache;

enum class SystemKind { kNvfiMesh, kVfiMesh, kVfiWinoc };

std::string system_name(SystemKind kind);

/// Fidelity band of a network evaluation (the multi-fidelity ladder,
/// DESIGN.md §12):
///  * kCycleAccurate — the wormhole simulator; the ground truth.
///  * kAnalytical    — the hop-by-hop M/D/1 model (noc/analytical.hpp),
///    orders of magnitude faster, validated against the simulator.
///  * kAuto          — evaluate in the analytical band; sweep drivers use it
///    for coarse exploration and re-confirm (promote) the surviving frontier
///    cycle-accurately.  At the single-evaluation level kAuto and
///    kAnalytical are the same band — sharing cache entries between them is
///    deliberate.
enum class Fidelity : std::uint8_t { kCycleAccurate, kAnalytical, kAuto };

std::string fidelity_name(Fidelity fidelity);

/// Inverse of fidelity_name, for CLI flags: parses "cycle" | "analytical" |
/// "auto" into `out`.  Returns false (leaving `out` untouched) on any other
/// spelling.
bool parse_fidelity(const std::string& name, Fidelity& out);

/// True when `fidelity` evaluates in the analytical band (kAnalytical or
/// kAuto).
inline bool analytical_band(Fidelity fidelity) {
  return fidelity != Fidelity::kCycleAccurate;
}

struct PlatformParams {
  SystemKind kind = SystemKind::kNvfiMesh;
  /// VFI systems: use the VFI 2 (bottleneck-reassigned) V/F values; false
  /// selects VFI 1 (Fig. 4's comparison).
  bool use_vfi2 = true;
  winoc::PlacementStrategy placement =
      winoc::PlacementStrategy::kMaxWirelessUtilization;
  winoc::SmallWorldParams smallworld{};
  vfi::VfiDesignParams vfi{};
  double network_clock_hz = 1.0e9;
  /// Per-hop switch pipeline depth in cycles.  The event simulator moves a
  /// flit one hop per cycle (throughput-exact for wormhole); the remaining
  /// (depth - 1) cycles per wire hop are added to the measured latency, the
  /// standard correction for multi-stage 65 nm router pipelines.  Wireless
  /// hops bypass intermediate switch pipelines (single mm-wave transfer).
  std::uint32_t router_pipeline_cycles = 4;
  /// Scheduler used on VFI systems (NVFI always runs kPhoenixDefault).
  /// See sysmodel/task_sim.hpp for the two Eq. 3 readings.
  StealingPolicy vfi_stealing = StealingPolicy::kVfiAssignment;
  noc::SimConfig noc_sim{};
  /// Fidelity band for network evaluations (see Fidelity above).  The
  /// default keeps every existing caller bit-identical: only code that opts
  /// into the analytical band ever leaves the cycle-accurate path.
  Fidelity fidelity = Fidelity::kCycleAccurate;
  noc::Cycle sim_cycles = 60'000;    ///< measured injection window
  noc::Cycle drain_cycles = 60'000;  ///< post-injection drain budget
  std::uint64_t traffic_seed = 99;
  /// Fault model for the resilience experiments.  NoC rates expand into a
  /// concrete seeded schedule inside evaluate_network (links/routers/WIs of
  /// the built platform); core_fail_prob draws per-phase core failures in
  /// FullSystemSim::run.  The default (all rates zero) is bit-identical to a
  /// fault-free run.
  faults::FaultSpec faults{};
  /// Telemetry sink (nullable, caller-owned; see src/telemetry).  When set,
  /// evaluate_network attaches it to the NoC simulation and
  /// FullSystemSim::run records phase spans, per-core task lifecycles and
  /// VFI island state — all on the simulated-time axis.  Null reproduces
  /// the untraced run bit-identically.
  telemetry::TelemetrySink* telemetry = nullptr;
  /// Process / metric prefix override; empty derives
  /// "<App> / <System>" (e.g. "Kmeans / VFI WiNoC").
  std::string telemetry_label;
  /// Memoizing NoC-evaluation service (nullable, caller-owned, thread-safe;
  /// see sysmodel/net_eval.hpp).  When set, FullSystemSim::run routes every
  /// network evaluation through its content-keyed cache, so identical
  /// evaluations across phases / systems / sweep entries are simulated
  /// once.  Null evaluates fresh each time — bit-identical results either
  /// way.
  NetworkEvaluator* net_eval = nullptr;
  /// Memoizing platform-construction service (nullable, caller-owned,
  /// thread-safe; see PlatformCache below).  When set, FullSystemSim::run
  /// reuses one BuiltPlatform per distinct (profile, design knobs) instead
  /// of re-running the VFI design flow — by far the most expensive
  /// fidelity-invariant part of a sweep point — for every evaluation.
  /// Null builds fresh each time; results are bit-identical either way.
  PlatformCache* platform_cache = nullptr;
  /// Per-phase injection-window length as a fraction of `sim_cycles`, used
  /// by the phase-resolved pipeline (profiles with per-phase traffic).  The
  /// default halves the window: four phase evaluations at half the window
  /// (minus the LibInit == Merge cache hit) cost ~1.5x one whole-run
  /// evaluation instead of 4x.  Profiles without phase traffic always use
  /// the full window.
  double phase_window_scale = 0.5;
};

/// The process/metric prefix a telemetry-enabled run uses: the explicit
/// PlatformParams::telemetry_label, or "<App> / <System>".
std::string telemetry_label(const workload::AppProfile& profile,
                            const PlatformParams& params);

/// A constructed platform, ready for network simulation.
struct BuiltPlatform {
  noc::Topology topology;
  std::unique_ptr<noc::RoutingAlgorithm> routing;
  noc::WirelessConfig wireless;
  std::vector<graph::NodeId> thread_to_node;
  Matrix node_traffic;  ///< thread traffic pushed through the mapping
  vfi::VfiDesign vfi;   ///< meaningful only when has_vfi
  bool has_vfi = false;
  std::size_t wi_count = 0;
  /// Lazily-populated memo of analytical NoC models over this platform
  /// (see noc/analytical.hpp).  A model depends on the platform plus the
  /// evaluation window / fault schedule — not on the traffic matrix — so
  /// the phase evaluations of a run (and every sweep point sharing this
  /// platform through a PlatformCache) reuse one construction.  Held by
  /// shared_ptr so BuiltPlatform stays movable and the memo follows the
  /// platform it indexes.
  std::shared_ptr<noc::AnalyticalNocModel::Cache> analytical_models =
      std::make_shared<noc::AnalyticalNocModel::Cache>();
};

/// Run the VFI design flow (if applicable), map threads and build the
/// interconnect for `profile` under `params`.  When `precomputed` is
/// non-null and the system has VFIs, the (expensive, simulated-annealing)
/// design flow is skipped and the given design used verbatim — everything
/// downstream of the design (thread mapping, WiNoC layout, routing) is
/// deterministic in (profile, params), so a stored design rebuilds the
/// exact platform the original run used.
BuiltPlatform build_platform(const workload::AppProfile& profile,
                             const PlatformParams& params,
                             const power::VfTable& table,
                             const vfi::VfiDesign* precomputed = nullptr);

/// Memoizing, thread-safe platform-construction service for design-space
/// sweeps.  Keys are the raw bytes of every input that steers
/// build_platform: the profile's workload content plus the design knobs
/// (system kind, placement, small-world and VFI parameters, V/F table).
/// Fidelity, injection windows, traffic seeds and fault specs deliberately
/// do NOT enter the key — platform design is invariant under them, which is
/// what makes one cached platform safe to share across every point of a
/// sweep axis.  Compute-once under contention: concurrent requests for the
/// same key block on the first builder (the VFI design flow is ~25x the
/// cost of a network evaluation, so duplicate builds would dwarf the win).
class PlatformCache {
 public:
  /// Returns the platform for (profile, params, table), building it on the
  /// first request.  The returned platform is immutable and outlives the
  /// cache entry via shared ownership.
  std::shared_ptr<const BuiltPlatform> get(
      const workload::AppProfile& profile, const PlatformParams& params,
      const power::VfTable& table);

  /// Attach (or detach, with nullptr) a persistent disk tier.  For VFI
  /// systems, a memory miss probes the store for the stored VfiDesign —
  /// the expensive simulated-annealing output — and rebuilds the rest of
  /// the platform deterministically around it; a disk miss runs the full
  /// design flow and writes the design back.  NVFI platforms never touch
  /// the store (no design to save).  Attach before handing the cache to
  /// worker threads; the store must outlive every get().
  void attach_store(store::EvalStore* store) { store_ = store; }
  store::EvalStore* store() const { return store_; }

  std::size_t size() const;
  std::uint64_t hits() const { return hits_.load(std::memory_order_relaxed); }
  std::uint64_t misses() const {
    return misses_.load(std::memory_order_relaxed);
  }
  std::uint64_t disk_hits() const {
    return disk_hits_.load(std::memory_order_relaxed);
  }
  std::uint64_t disk_misses() const {
    return disk_misses_.load(std::memory_order_relaxed);
  }

 private:
  struct Entry {
    std::mutex mutex;
    std::shared_ptr<const BuiltPlatform> value;
  };
  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> cache_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
  std::atomic<std::uint64_t> disk_hits_{0};
  std::atomic<std::uint64_t> disk_misses_{0};
  store::EvalStore* store_ = nullptr;
};

/// Aggregate network figures extracted from a cycle-accurate run.
struct NetworkEval {
  double avg_latency_cycles = 0.0;
  double energy_per_flit_j = 0.0;   ///< dynamic NoC energy per delivered flit
  double wireless_utilization = 0.0;
  std::uint64_t flits_delivered = 0;
  bool drained = false;
  noc::Metrics metrics;

  /// Network-only EDP figure of merit: energy/flit x latency (used for the
  /// §7.2 / Fig. 6 network-parameter comparisons).
  double network_edp() const { return energy_per_flit_j * avg_latency_cycles; }
};

/// Drive the platform's NoC with the profile's (mapped) traffic and measure
/// latency and per-flit energy.
NetworkEval evaluate_network(const BuiltPlatform& platform,
                             const workload::AppProfile& profile,
                             const PlatformParams& params,
                             const power::NocPowerModel& noc_power);

}  // namespace vfimr::sysmodel
