#pragma once
// Deterministic task-level execution simulation for one MapReduce phase.
//
// Mirrors the Phoenix scheduler semantics (block distribution, steal from
// the victim with the most remaining work, optional Eq. 3 cap on sub-f_max
// cores) but over *modeled* task durations, so the full-system experiments
// are reproducible and independent of host timing.  Task time on core c is
//     t = cycles / freq_c + mem_seconds * mem_scale
// where mem_scale folds in the measured NoC latency ratio (see
// workload/profile.hpp).

#include <cstdint>
#include <string>
#include <vector>

#include "common/rng.hpp"
#include "faults/faults.hpp"
#include "workload/profile.hpp"

namespace vfimr::telemetry {
class TelemetrySink;
}  // namespace vfimr::telemetry

namespace vfimr::sysmodel {

struct SimTask {
  double cycles = 0.0;       ///< compute cycles (scale with 1/f)
  double mem_seconds = 0.0;  ///< memory time at baseline latency
};

struct SimCore {
  double freq_hz = 2.5e9;
  double rel_freq = 1.0;  ///< f / f_max, for the Eq. 3 stealing cap
};

struct TaskSimResult {
  double makespan_s = 0.0;
  std::vector<double> busy_seconds;          ///< per core
  std::vector<std::uint64_t> tasks_executed;  ///< per core
  std::uint64_t steals = 0;
  // Fault accounting (all zero on fault-free runs):
  std::uint64_t cores_failed = 0;     ///< cores lost during this phase
  std::uint64_t tasks_reexecuted = 0; ///< re-runs of tasks lost to failures
  double wasted_seconds = 0.0;        ///< partial work discarded at failures
};

/// How Eq. 3 of the paper is applied to the scheduler.  The paper states the
/// modified policy as "restrict the number of tasks performed by cores with
/// lower V/F to N_f" but leaves the enforcement mechanism open; both natural
/// readings are implemented (and compared in bench_stealing):
enum class StealingPolicy {
  /// Unmodified Phoenix: equal block distribution + steal-from-largest.
  kPhoenixDefault,
  /// N_f shapes the *initial assignment* (slow cores start with N_f tasks,
  /// the surplus goes to f_max cores); stealing itself stays unrestricted.
  /// This is the reading used by the full-system experiments: it removes the
  /// harmful late steals of §4.3 without starving the slow cores' capacity.
  kVfiAssignment,
  /// Hard execution cap: a slow core stops for good after N_f tasks.
  kVfiHardCap,
};

/// Draw a concrete task set from its statistical description.
std::vector<SimTask> materialize_tasks(const workload::TaskSet& spec,
                                       Rng& rng);

/// Owner core of task `task` under the Phoenix block split: core i holds the
/// tasks [i*n/c, (i+1)*n/c), so the owner is the largest i with
/// floor(i*n/c) <= task — i.e. the exact inverse of the split for every
/// (n, c), including n % c != 0.  Requires n > 0 and c > 0.
inline std::size_t block_owner(std::size_t task, std::size_t n,
                               std::size_t c) {
  return ((task + 1) * c - 1) / n;
}

/// Nominal platform frequency used to convert cycles <-> seconds when
/// re-balancing a task's compute/memory split (the V/F ladder maximum).
inline constexpr double kNominalFreqHz = 2.5e9;

/// Like materialize_tasks, but correlates each task's compute/memory split
/// with the utilization of the core that owns its data block: tasks from
/// low-utilization (memory-stalled) threads are memory-heavy, tasks from
/// high-utilization threads are compute-heavy.  Total task time at f_max is
/// preserved.  This is the paper's §7.3 observation — "cores [with] less
/// than 50% utilization ... can be operated with significantly lower V/F
/// without affecting the execution time" — made concrete: their work barely
/// scales with frequency.
std::vector<SimTask> materialize_tasks(const workload::TaskSet& spec,
                                       const std::vector<double>& utilization,
                                       Rng& rng);

/// Nullable telemetry hookup for one simulate_phase call.  Timestamps use
/// the simulated-time axis: 1 simulated second = 1e6 trace µs, and `t0_us`
/// places the phase start on that axis (phases of one run chain end to end).
/// `process` groups the per-core tracks in the trace viewer (one Chrome
/// process per system under test, e.g. "Kmeans / VFI WiNoC"); `label`
/// prefixes the registry metric names.  Span volume per call is capped by
/// TelemetryConfig::max_task_events_per_phase — metrics keep counting past
/// the cap.  Passing nullptr (or a null sink) is the untraced fast path.
struct PhaseTelemetry {
  telemetry::TelemetrySink* sink = nullptr;
  std::string process = "system";
  std::string label = "system";
  const char* phase = "phase";  ///< span name: "map", "reduce", ...
  double t0_us = 0.0;
};

/// Simulate one phase under the given stealing policy.  rel_freq is
/// interpreted relative to the fastest core *present in this run* (Eq. 3's
/// f_max is the maximum operating frequency of the configuration).
///
/// `core_faults` (optional) injects permanent core failures: a faulted core
/// dies at `at_fraction` of the phase's ideal makespan — partial work on its
/// current task is discarded (charged as wasted busy time) and the task is
/// re-executed by a survivor no earlier than the failure instant.  Passing
/// nullptr or an empty list is bit-identical to the fault-free simulation.
TaskSimResult simulate_phase(
    const std::vector<SimTask>& tasks, const std::vector<SimCore>& cores,
    double mem_scale, StealingPolicy policy,
    const std::vector<faults::CoreFault>* core_faults = nullptr,
    const PhaseTelemetry* telemetry = nullptr);

}  // namespace vfimr::sysmodel
