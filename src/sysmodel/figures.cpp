#include "sysmodel/figures.hpp"

#include <algorithm>
#include <string>

#include "common/require.hpp"
#include "sysmodel/sweep.hpp"
#include "workload/app.hpp"

namespace vfimr::sysmodel {

namespace {

/// Returns `report` with the perturbation applied: map time stretched (and
/// the total re-derived from the phases so exec_s stays consistent) and core
/// energy scaled.  Identity perturbation returns a bit-identical copy.
SystemReport perturbed(const SystemReport& report,
                       const FigurePerturbation& p) {
  SystemReport r = report;
  r.phases.map_s *= p.map_time_scale;
  r.exec_s += r.phases.map_s - report.phases.map_s;
  r.core_energy_j *= p.core_energy_scale;
  return r;
}

void put(json::MetricMap& map, const std::string& key, double value) {
  VFIMR_REQUIRE_MSG(map.emplace(key, value).second,
                    "duplicate golden metric key '" << key << "'");
}

}  // namespace

FigureData compute_figure_data(const FigureParams& params) {
  const FullSystemSim sim;
  FigureData data;
  for (workload::App app : workload::kAllApps) {
    data.profiles.push_back(workload::make_profile(app, params.profile));
  }
  data.comparisons =
      sweep_comparisons(data.profiles, sim, params.platform, params.threads);
  return data;
}

FigureMetrics extract_metrics(const FigureData& data,
                              const FigurePerturbation& perturb) {
  VFIMR_REQUIRE(data.profiles.size() == data.comparisons.size());
  FigureMetrics m;

  std::vector<double> winoc_savings;
  double max_saving = 0.0;
  double max_exec_penalty = 0.0;

  for (std::size_t a = 0; a < data.profiles.size(); ++a) {
    const workload::AppProfile& profile = data.profiles[a];
    const std::string app = profile.name();

    const SystemReport nvfi = perturbed(data.comparisons[a].nvfi_mesh, perturb);
    const SystemReport mesh = perturbed(data.comparisons[a].vfi_mesh, perturb);
    const SystemReport winoc = perturbed(data.comparisons[a].vfi_winoc, perturb);

    // Fig. 2 — per-app utilization shape (profile-level, unperturbed by
    // construction: the perturbation models runtime drift, not workload).
    put(m.fig2, "fig2." + app + ".mean_util", profile.mean_utilization());
    put(m.fig2, "fig2." + app + ".bottleneck_util",
        profile.bottleneck_utilization());

    // Fig. 7 — per-phase execution time normalized by the NVFI-mesh total.
    const double base = nvfi.exec_s;
    VFIMR_REQUIRE(base > 0.0);
    auto add_fig7 = [&](const char* system, const SystemReport& r) {
      const std::string prefix = "fig7." + app + "." + system + ".";
      put(m.fig7, prefix + "lib_init", r.phases.lib_init_s / base);
      put(m.fig7, prefix + "map", r.phases.map_s / base);
      put(m.fig7, prefix + "reduce", r.phases.reduce_s / base);
      put(m.fig7, prefix + "merge", r.phases.merge_s / base);
      put(m.fig7, prefix + "total", r.exec_s / base);
    };
    add_fig7("nvfi_mesh", nvfi);
    add_fig7("vfi_mesh", mesh);
    add_fig7("vfi_winoc", winoc);
    // Absolute anchor: normalized ratios alone would hide a drift that
    // scales every system identically (e.g. a uniform map-time slowdown).
    put(m.fig7, "fig7." + app + ".nvfi_exec_s", base);

    // Fig. 8 — full-system EDP and energy, normalized by the NVFI mesh.
    const double base_edp = nvfi.edp_js();
    put(m.fig8, "fig8." + app + ".nvfi_edp_js", base_edp);  // absolute anchor
    put(m.fig8, "fig8." + app + ".vfi_mesh_edp", mesh.edp_js() / base_edp);
    const double winoc_edp = winoc.edp_js() / base_edp;
    put(m.fig8, "fig8." + app + ".vfi_winoc_edp", winoc_edp);
    put(m.fig8, "fig8." + app + ".winoc_exec", winoc.exec_s / nvfi.exec_s);
    put(m.fig8, "fig8." + app + ".core_e",
        winoc.core_energy_j / nvfi.core_energy_j);
    put(m.fig8, "fig8." + app + ".net_e",
        (winoc.net_dynamic_j + winoc.net_static_j) /
            (nvfi.net_dynamic_j + nvfi.net_static_j));

    winoc_savings.push_back(1.0 - winoc_edp);
    max_saving = std::max(max_saving, winoc_savings.back());
    max_exec_penalty =
        std::max(max_exec_penalty, winoc.exec_s / nvfi.exec_s - 1.0);

    // Table 2 — per-cluster V/F assignment of the VFI-mesh design (the
    // WiNoC system shares the same design flow; its table is checked via
    // the fig8 metrics it produces).
    VFIMR_REQUIRE(mesh.has_vfi);
    for (std::size_t c = 0; c < mesh.vfi.vfi1.size(); ++c) {
      const std::string prefix =
          "table2." + app + ".cluster" + std::to_string(c) + ".";
      put(m.table2, prefix + "vfi1_ghz", mesh.vfi.vfi1[c].freq_hz / 1e9);
      put(m.table2, prefix + "vfi1_v", mesh.vfi.vfi1[c].voltage_v);
      put(m.table2, prefix + "vfi2_ghz", mesh.vfi.vfi2[c].freq_hz / 1e9);
      put(m.table2, prefix + "vfi2_v", mesh.vfi.vfi2[c].voltage_v);
    }
  }

  double avg_saving = 0.0;
  for (double s : winoc_savings) avg_saving += s;
  avg_saving /= static_cast<double>(winoc_savings.size());
  put(m.fig8, "fig8.summary.avg_saving", avg_saving);
  put(m.fig8, "fig8.summary.max_saving", max_saving);
  put(m.fig8, "fig8.summary.max_exec_penalty", max_exec_penalty);
  return m;
}

}  // namespace vfimr::sysmodel
