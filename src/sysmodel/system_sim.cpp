#include "sysmodel/system_sim.hpp"

#include <algorithm>
#include <cstdio>

#include "common/require.hpp"
#include "sysmodel/net_eval.hpp"
#include "telemetry/telemetry.hpp"
#include "winoc/thread_mapping.hpp"

namespace vfimr::sysmodel {

FullSystemSim::FullSystemSim() : FullSystemSim(Models{}) {}

FullSystemSim::FullSystemSim(Models models, const power::VfTable& table)
    : models_{std::move(models)}, table_{&table} {}

namespace {

/// Memory fraction of a task set's nominal task time.
double mem_fraction(const workload::TaskSet& spec, double fmax) {
  const double compute_s = spec.cycles_mean / fmax;
  const double total = compute_s + spec.mem_seconds_mean;
  return total > 0.0 ? spec.mem_seconds_mean / total : 0.0;
}

double serial_time(const workload::SerialStage& stage, double freq_hz,
                   double mem_scale) {
  return stage.cycles / freq_hz + stage.mem_seconds * mem_scale;
}

/// Accumulate one phase simulation's metrics into the whole-run totals.
void merge_metrics(noc::Metrics& into, const noc::Metrics& m) {
  into.packets_injected += m.packets_injected;
  into.packets_ejected += m.packets_ejected;
  into.packets_local += m.packets_local;
  into.flits_ejected += m.flits_ejected;
  into.cycles += m.cycles;
  into.packet_latency.merge(m.packet_latency);
  into.energy.switch_traversals += m.energy.switch_traversals;
  into.energy.wire_hops += m.energy.wire_hops;
  into.energy.wire_mm_flits += m.energy.wire_mm_flits;
  into.energy.wireless_flits += m.energy.wireless_flits;
  into.energy.buffer_writes += m.energy.buffer_writes;
  into.energy.buffer_reads += m.energy.buffer_reads;
  into.fault_events += m.fault_events;
  into.route_rebuilds += m.route_rebuilds;
  into.retry_backoffs += m.retry_backoffs;
  into.packets_lost += m.packets_lost;
  into.flits_lost += m.flits_lost;
}

}  // namespace

double vfi_network_v2_factor(const Matrix& node_traffic,
                             const std::vector<std::size_t>& node_cluster,
                             const std::vector<power::VfPoint>& cluster_vf,
                             double v_nom) {
  VFIMR_REQUIRE(v_nom > 0.0);
  VFIMR_REQUIRE_MSG(node_traffic.rows() == node_traffic.cols(),
                    "traffic matrix must be square");
  VFIMR_REQUIRE_MSG(node_cluster.size() == node_traffic.rows(),
                    "cluster map covers " << node_cluster.size()
                                          << " nodes but the traffic matrix "
                                          << "has " << node_traffic.rows());
  const std::size_t n = node_traffic.rows();
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      const double w = node_traffic(s, d);
      if (w <= 0.0) continue;
      VFIMR_REQUIRE_MSG(node_cluster[s] < cluster_vf.size() &&
                            node_cluster[d] < cluster_vf.size(),
                        "node cluster id out of range of the V/F assignment");
      const double vs = cluster_vf[node_cluster[s]].voltage_v;
      const double vd = cluster_vf[node_cluster[d]].voltage_v;
      // A packet spends roughly half its hops in each endpoint's island.
      weighted += w * 0.5 * (vs * vs + vd * vd) / (v_nom * v_nom);
      total += w;
    }
  }
  return total > 0.0 ? weighted / total : 1.0;
}

PhaseBaselines phase_baselines(const SystemReport& nvfi_report) {
  PhaseBaselines b;
  for (std::size_t p = 0; p < workload::kPhaseCount; ++p) {
    const PhaseResult& pr = nvfi_report.phase_results[p];
    // Unevaluated phases of a phase-resolved run (weight 0) stay at 0: the
    // VFI run skips them too.  Legacy runs mirror the whole-run latency
    // into every slot, reproducing the scalar-baseline behavior.
    b.latency_cycles[p] = pr.evaluated || !nvfi_report.phase_resolved
                              ? pr.net.avg_latency_cycles
                              : 0.0;
  }
  return b;
}

SystemReport FullSystemSim::run(const workload::AppProfile& profile,
                                const PlatformParams& params,
                                double baseline_latency_cycles) const {
  PhaseBaselines baselines;
  baselines.latency_cycles.fill(baseline_latency_cycles);
  return run(profile, params, baselines);
}

SystemReport FullSystemSim::run(const workload::AppProfile& profile,
                                const PlatformParams& params,
                                const PhaseBaselines& baselines) const {
  const std::size_t n = profile.threads;
  VFIMR_REQUIRE(profile.utilization.size() == n);
  VFIMR_REQUIRE_MSG(params.phase_window_scale > 0.0,
                    "phase_window_scale must be positive");
  VFIMR_REQUIRE_MSG(params.sim_cycles > 0,
                    "sim_cycles must be positive (no injection window)");

  SystemReport report;
  report.kind = params.kind;

  // ---- Telemetry (nullable; every hook below is gated on `tele`).
  telemetry::TelemetrySink* const tele = params.telemetry;
  const std::string label =
      tele != nullptr ? telemetry_label(profile, params) : std::string{};

  // ---- Interconnect: build the platform, then evaluate the NoC — once
  // under the whole-run matrix (legacy profiles), or once per phase matrix
  // (the PhasePlan -> PhaseResult pipeline).  Evaluations route through the
  // shared memo cache when params.net_eval is set.
  std::shared_ptr<const BuiltPlatform> cached_platform;
  BuiltPlatform local_platform;
  if (params.platform_cache != nullptr) {
    cached_platform = params.platform_cache->get(profile, params, *table_);
  } else {
    local_platform = build_platform(profile, params, *table_);
  }
  const BuiltPlatform& built =
      cached_platform != nullptr ? *cached_platform : local_platform;
  report.has_vfi = built.has_vfi;
  if (built.has_vfi) report.vfi = built.vfi;
  report.phase_resolved = profile.phase_resolved();
  const double s = profile.net_sensitivity;

  auto eval_traffic = [&](const Matrix& node_traffic,
                          const PlatformParams& eval_params,
                          const std::string& eval_label) {
    if (params.net_eval != nullptr) {
      return params.net_eval->evaluate(built, node_traffic,
                                       profile.packet_flits, eval_params,
                                       models_.noc, eval_label);
    }
    return evaluate_network_banded(built, node_traffic, profile.packet_flits,
                                   eval_params, models_.noc, eval_label);
  };

  std::array<PhasePlan, workload::kPhaseCount> plans;
  if (!report.phase_resolved) {
    // Legacy single-matrix coupling: one evaluation, one latency ratio, one
    // mem_scale — bit-identical to the pre-phase-pipeline model.
    report.net = eval_traffic(built.node_traffic, params,
                              telemetry_label(profile, params));
    report.resilience.noc_fault_events = report.net.metrics.fault_events;
    report.resilience.noc_route_rebuilds = report.net.metrics.route_rebuilds;
    report.resilience.noc_retry_backoffs = report.net.metrics.retry_backoffs;
    report.resilience.packets_lost = report.net.metrics.packets_lost;
    report.resilience.flits_lost = report.net.metrics.flits_lost;

    const double scalar_baseline =
        baselines.latency_cycles[static_cast<std::size_t>(
            workload::Phase::kMap)];
    report.baseline_latency_cycles = scalar_baseline > 0.0
                                         ? scalar_baseline
                                         : report.net.avg_latency_cycles;
    const double latency_ratio =
        report.baseline_latency_cycles > 0.0
            ? report.net.avg_latency_cycles / report.baseline_latency_cycles
            : 1.0;
    report.mem_scale = (1.0 - s) + s * latency_ratio;
    // Every phase slot mirrors the whole-run evaluation so downstream
    // consumers (phase_baselines, bench CSV columns) see a uniform view.
    for (std::size_t p = 0; p < workload::kPhaseCount; ++p) {
      PhaseResult& pr = report.phase_results[p];
      pr.phase = static_cast<workload::Phase>(p);
      pr.net = report.net;
      pr.baseline_latency_cycles = report.baseline_latency_cycles;
      pr.mem_scale = report.mem_scale;
      pr.rate_packets_per_cycle = profile.traffic.sum();
    }
  } else {
    // Phase-resolved pipeline, step 1: plan.  Map each phase's thread
    // traffic onto NoC nodes through the platform's thread mapping.
    for (std::size_t p = 0; p < workload::kPhaseCount; ++p) {
      PhasePlan& plan = plans[p];
      plan.phase = static_cast<workload::Phase>(p);
      plan.weight = profile.phase_weight[p];
      if (plan.weight <= 0.0) continue;
      const Matrix& thread_traffic = profile.phase_traffic[p];
      plan.rate_packets_per_cycle = thread_traffic.sum();
      plan.node_traffic = winoc::map_traffic(thread_traffic,
                                             built.thread_to_node,
                                             built.node_traffic.rows());
    }

    // Step 2: evaluate each planned phase in a scaled injection window.
    // LibInit and Merge share a traffic matrix by construction, so the
    // second of the two is a guaranteed NetworkEvaluator cache hit.
    PlatformParams phase_params = params;
    phase_params.sim_cycles = std::max<noc::Cycle>(
        1, static_cast<noc::Cycle>(static_cast<double>(params.sim_cycles) *
                                   params.phase_window_scale));
    for (std::size_t p = 0; p < workload::kPhaseCount; ++p) {
      const PhasePlan& plan = plans[p];
      PhaseResult& pr = report.phase_results[p];
      pr.phase = plan.phase;
      pr.rate_packets_per_cycle = plan.rate_packets_per_cycle;
      if (plan.weight <= 0.0) continue;
      std::string eval_label;
      if (tele != nullptr) {
        eval_label = label + " / " + workload::phase_name(plan.phase);
      }
      pr.net = eval_traffic(plan.node_traffic, phase_params, eval_label);
      pr.evaluated = true;

      const double base =
          baselines.latency_cycles[p] > 0.0 ? baselines.latency_cycles[p]
                                            : pr.net.avg_latency_cycles;
      pr.baseline_latency_cycles = base;
      const double ratio =
          base > 0.0 ? pr.net.avg_latency_cycles / base : 1.0;
      pr.mem_scale = (1.0 - s) + s * ratio;

      report.resilience.noc_fault_events += pr.net.metrics.fault_events;
      report.resilience.noc_route_rebuilds += pr.net.metrics.route_rebuilds;
      report.resilience.noc_retry_backoffs += pr.net.metrics.retry_backoffs;
      report.resilience.packets_lost += pr.net.metrics.packets_lost;
      report.resilience.flits_lost += pr.net.metrics.flits_lost;
    }
  }

  // Memory-time multiplier each execution stage actually sees.
  const auto mem_scale_of = [&](workload::Phase p) {
    return report.phase_resolved ? report.phase_result(p).mem_scale
                                 : report.mem_scale;
  };

  // ---- Per-thread operating points.
  const double fmax = table_->max().freq_hz;
  std::vector<power::VfPoint> vf(n, table_->max());
  if (built.has_vfi) {
    for (std::size_t t = 0; t < n; ++t) {
      vf[t] = built.vfi.vf_of_thread(t, params.use_vfi2);
    }
  }
  std::vector<SimCore> cores(n);
  std::vector<SimCore> nominal_cores(n);
  for (std::size_t t = 0; t < n; ++t) {
    cores[t] = SimCore{vf[t].freq_hz, vf[t].freq_hz / fmax};
    nominal_cores[t] = SimCore{fmax, 1.0};
  }

  const std::size_t master =
      profile.master_threads.empty() ? 0 : profile.master_threads.front();
  const double f_master = vf[master].freq_hz;

  // Same task draws for every system configuration: the RNG depends only on
  // the application, so reports are directly comparable.
  Rng task_rng{0xF00Dull ^ (static_cast<std::uint64_t>(profile.app) << 8)};

  // Parallel-phase energy: per-thread utilization from the profile,
  // stretched by the busy-time dilation at the thread's frequency and
  // normalized by the phase's overall dilation.
  auto parallel_energy = [&](const workload::TaskSet& spec,
                             const TaskSimResult& actual,
                             const TaskSimResult& nominal,
                             double mem_scale) {
    const double mf = mem_fraction(spec, fmax);
    const double dilation = nominal.makespan_s > 0.0
                                ? actual.makespan_s / nominal.makespan_s
                                : 1.0;
    double energy = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      const double stretch =
          (1.0 - mf) * fmax / cores[t].freq_hz + mf * mem_scale;
      const double u = std::min(
          1.0, profile.utilization[t] * stretch / std::max(dilation, 1e-9));
      energy += models_.core.energy_j(u, vf[t], actual.makespan_s);
    }
    return energy;
  };

  auto serial_energy = [&](double seconds) {
    double energy = models_.core.energy_j(1.0, vf[master], seconds);
    for (std::size_t t = 0; t < n; ++t) {
      if (t != master) energy += models_.core.energy_j(0.0, vf[t], seconds);
    }
    return energy;
  };

  // Core-failure draws: a fresh, seed-derived plan per parallel phase, so a
  // fixed (profile, params) pair replays bit-identically while map and
  // reduce phases of different iterations see independent failures.  The
  // *nominal* (fault-free, f_max) runs never see faults — they stay the
  // energy-normalization reference.
  const bool core_faults_on = params.faults.core_fail_prob > 0.0;
  std::uint64_t fault_phase = 0;
  auto draw_core_faults = [&]() {
    return faults::make_core_faults(
        n, params.faults.core_fail_prob,
        params.faults.seed ^
            (static_cast<std::uint64_t>(profile.app) << 20) ^
            (++fault_phase * 0x9E3779B97F4A7C15ull));
  };
  auto account_phase = [&](const TaskSimResult& actual) {
    report.resilience.core_failures += actual.cores_failed;
    report.resilience.tasks_reexecuted += actual.tasks_reexecuted;
    report.resilience.wasted_core_seconds += actual.wasted_seconds;
  };

  // Phase spans chain end to end on the simulated-time axis (1 simulated
  // second = 1e6 trace µs); `sim_us` is the running cursor and doubles as
  // the t0 of each parallel phase's task-level trace.
  telemetry::TrackId phases_track = 0;
  double sim_us = 0.0;
  if (tele != nullptr) phases_track = tele->tracer().track(label, "phases");
  auto trace_phase = [&](const char* name, double seconds) {
    if (tele != nullptr && seconds > 0.0) {
      tele->tracer().complete(phases_track, name, sim_us, seconds * 1e6);
    }
    sim_us += seconds * 1e6;
  };
  // Busy/idle attribution, whole-chip and (on VFI systems) per island, plus
  // the epoch-resolved utilization/power rollups (telemetry::TimeSeries) the
  // DVFS-governor roadmap item consumes.  `core_energy_j` is the phase's
  // core energy; samples land at the phase's start on the simulated axis.
  auto note_phase = [&](const TaskSimResult& actual, double core_energy_j) {
    if (tele == nullptr) return;
    auto& metrics = tele->metrics();
    double busy = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      busy += actual.busy_seconds[t];
      if (built.has_vfi) {
        const std::string island =
            label + ".vfi.island" + std::to_string(built.vfi.assignment[t]);
        metrics.gauge(island + ".busy_s").add(actual.busy_seconds[t]);
        metrics.gauge(island + ".idle_s")
            .add(actual.makespan_s - actual.busy_seconds[t]);
      }
    }
    metrics.gauge(label + ".sys.busy_s").add(busy);
    metrics.gauge(label + ".sys.idle_s")
        .add(actual.makespan_s * static_cast<double>(n) - busy);
    if (actual.makespan_s > 0.0) {
      const double epoch = tele->config().sys_timeseries_epoch_s;
      const double at_s = sim_us / 1e6;
      metrics.timeseries(label + ".sys.utilization", epoch)
          .record(at_s, busy / (actual.makespan_s * static_cast<double>(n)));
      metrics.timeseries(label + ".sys.power_w", epoch)
          .record(at_s, core_energy_j / actual.makespan_s);
    }
  };

  for (int iter = 0; iter < profile.iterations; ++iter) {
    // Library init (serial, master).
    const double t_li =
        serial_time(profile.phases.lib_init, f_master,
                    mem_scale_of(workload::Phase::kLibInit));
    report.phases.lib_init_s += t_li;
    report.core_energy_j += serial_energy(t_li);
    trace_phase("lib_init", t_li);

    const StealingPolicy policy =
        built.has_vfi ? params.vfi_stealing : StealingPolicy::kPhoenixDefault;

    // Map.
    const auto map_tasks =
        materialize_tasks(profile.phases.map, profile.utilization, task_rng);
    std::vector<faults::CoreFault> map_faults;
    if (core_faults_on) map_faults = draw_core_faults();
    PhaseTelemetry map_pt{tele, label, label, "map", sim_us};
    const double ms_map = mem_scale_of(workload::Phase::kMap);
    const TaskSimResult map_actual =
        simulate_phase(map_tasks, cores, ms_map, policy,
                       core_faults_on ? &map_faults : nullptr,
                       tele != nullptr ? &map_pt : nullptr);
    // The nominal (f_max, fault-free) normalization run stays untraced.
    const TaskSimResult map_nominal = simulate_phase(
        map_tasks, nominal_cores, 1.0, StealingPolicy::kPhoenixDefault);
    report.phases.map_s += map_actual.makespan_s;
    const double map_energy_j =
        parallel_energy(profile.phases.map, map_actual, map_nominal, ms_map);
    report.core_energy_j += map_energy_j;
    account_phase(map_actual);
    note_phase(map_actual, map_energy_j);
    trace_phase("map", map_actual.makespan_s);

    // Reduce.
    const auto red_tasks = materialize_tasks(profile.phases.reduce,
                                             profile.utilization, task_rng);
    std::vector<faults::CoreFault> red_faults;
    if (core_faults_on) red_faults = draw_core_faults();
    PhaseTelemetry red_pt{tele, label, label, "reduce", sim_us};
    const double ms_red = mem_scale_of(workload::Phase::kReduce);
    const TaskSimResult red_actual =
        simulate_phase(red_tasks, cores, ms_red, policy,
                       core_faults_on ? &red_faults : nullptr,
                       tele != nullptr ? &red_pt : nullptr);
    const TaskSimResult red_nominal = simulate_phase(
        red_tasks, nominal_cores, 1.0, StealingPolicy::kPhoenixDefault);
    report.phases.reduce_s += red_actual.makespan_s;
    const double red_energy_j = parallel_energy(profile.phases.reduce,
                                                red_actual, red_nominal,
                                                ms_red);
    report.core_energy_j += red_energy_j;
    account_phase(red_actual);
    note_phase(red_actual, red_energy_j);
    trace_phase("reduce", red_actual.makespan_s);

    // Merge (serial, master).
    const double t_merge =
        serial_time(profile.phases.merge, f_master,
                    mem_scale_of(workload::Phase::kMerge));
    report.phases.merge_s += t_merge;
    report.core_energy_j += serial_energy(t_merge);
    trace_phase("merge", t_merge);
  }

  report.exec_s = report.phases.total_s();
  // Traffic only flows while cores make progress; network energy below uses
  // the pre-stall execution time.
  const double traffic_exec_s = report.exec_s;

  // ---- Attribute the measured wall time to the phase results.
  {
    const std::array<double, workload::kPhaseCount> phase_time = {
        report.phases.lib_init_s, report.phases.map_s, report.phases.reduce_s,
        report.phases.merge_s};
    for (std::size_t p = 0; p < workload::kPhaseCount; ++p) {
      report.phase_results[p].time_s = phase_time[p];
    }
  }

  // ---- Fold the per-phase evaluations into the whole-run view.  Latency,
  // energy/flit and the baseline combine packet-weighted (phase p carries
  // rate_p x time_p packets; the network clock cancels out of the weights);
  // mem_scale combines time-weighted; metrics counters sum over the phase
  // simulations.
  if (report.phase_resolved) {
    NetworkEval agg;
    agg.drained = true;
    double pkts_total = 0.0, lat_sum = 0.0, epf_sum = 0.0, base_sum = 0.0;
    double t_total = 0.0, wu_sum = 0.0, ms_sum = 0.0;
    for (std::size_t p = 0; p < workload::kPhaseCount; ++p) {
      const PhaseResult& pr = report.phase_results[p];
      t_total += pr.time_s;
      ms_sum += pr.time_s * pr.mem_scale;
      if (!pr.evaluated) continue;
      const double pkts = pr.rate_packets_per_cycle * pr.time_s;
      pkts_total += pkts;
      lat_sum += pkts * pr.net.avg_latency_cycles;
      epf_sum += pkts * pr.net.energy_per_flit_j;
      base_sum += pkts * pr.baseline_latency_cycles;
      wu_sum += pr.time_s * pr.net.wireless_utilization;
      agg.flits_delivered += pr.net.flits_delivered;
      agg.drained = agg.drained && pr.net.drained;
      merge_metrics(agg.metrics, pr.net.metrics);
    }
    if (pkts_total > 0.0) {
      agg.avg_latency_cycles = lat_sum / pkts_total;
      agg.energy_per_flit_j = epf_sum / pkts_total;
      report.baseline_latency_cycles = base_sum / pkts_total;
    }
    if (t_total > 0.0) {
      agg.wireless_utilization = wu_sum / t_total;
      report.mem_scale = ms_sum / t_total;
    }
    report.net = agg;
  }

  // ---- Lost-packet stalls.  Each NoC run is a sample of the network under
  // its traffic; extrapolate its loss rate over the (phase's) execution and
  // charge each lost packet a receiver-timeout stall on its destination
  // core.  With losses spread over n cores the added wall-clock is
  //   losses/cycle x (exec_s x f_net) x (timeout / f_net) / n
  // — the network clock cancels.  Zero losses leave exec_s untouched.
  double stall_s = 0.0;
  std::uint64_t stall_losses = 0;
  const double stall_factor =
      static_cast<double>(params.faults.loss_timeout_cycles) /
      static_cast<double>(n);
  if (!report.phase_resolved) {
    if (report.net.metrics.packets_lost > 0 && report.net.metrics.cycles > 0) {
      const double loss_per_cycle =
          static_cast<double>(report.net.metrics.packets_lost) /
          static_cast<double>(report.net.metrics.cycles);
      stall_s = loss_per_cycle * report.exec_s * stall_factor;
      stall_losses = report.net.metrics.packets_lost;
    }
  } else {
    for (std::size_t p = 0; p < workload::kPhaseCount; ++p) {
      const PhaseResult& pr = report.phase_results[p];
      if (!pr.evaluated || pr.net.metrics.packets_lost == 0 ||
          pr.net.metrics.cycles == 0) {
        continue;
      }
      const double loss_per_cycle =
          static_cast<double>(pr.net.metrics.packets_lost) /
          static_cast<double>(pr.net.metrics.cycles);
      stall_s += loss_per_cycle * pr.time_s * stall_factor;
      stall_losses += pr.net.metrics.packets_lost;
    }
  }
  if (stall_s > 0.0) {
    report.resilience.net_stall_seconds = stall_s;
    report.exec_s += stall_s;
    // Stalled cores sit idle at their operating point.
    for (std::size_t t = 0; t < n; ++t) {
      report.core_energy_j += models_.core.energy_j(0.0, vf[t], stall_s);
    }
    if (tele != nullptr) {
      tele->tracer().complete(
          phases_track, "net stall", sim_us, stall_s * 1e6,
          {{"packets_lost", static_cast<double>(stall_losses)}});
      tele->metrics().gauge(label + ".sys.net_stall_s").add(stall_s);
    }
  }

  // ---- Network energy over the whole run.  On VFI systems the routers and
  // links inside each island run at the island's voltage, so interconnect
  // dynamic energy scales with the traffic-weighted average V^2 — the
  // "energy reduction on both processing cores and interconnection network"
  // the paper targets.  Phase-resolved runs attribute dynamic energy per
  // phase: each phase's own rate, measured energy/flit, V^2 factor and wall
  // time.
  double net_v2_factor = 1.0;
  if (built.has_vfi) {
    net_v2_factor =
        vfi_network_v2_factor(built.node_traffic, winoc::quadrant_clusters(),
                              built.vfi.vfi2, table_->max().voltage_v);
  }
  if (!report.phase_resolved) {
    const double packets_per_cycle = profile.traffic.sum();
    const double flits = packets_per_cycle * params.network_clock_hz *
                         traffic_exec_s *
                         static_cast<double>(profile.packet_flits);
    report.net_dynamic_j =
        report.net.energy_per_flit_j * flits * net_v2_factor;
    // Pro-rate into the mirrored phase slots for a uniform CSV view.
    for (std::size_t p = 0; p < workload::kPhaseCount; ++p) {
      PhaseResult& pr = report.phase_results[p];
      pr.net_dynamic_j = traffic_exec_s > 0.0
                             ? report.net_dynamic_j * pr.time_s /
                                   traffic_exec_s
                             : 0.0;
    }
  } else {
    for (std::size_t p = 0; p < workload::kPhaseCount; ++p) {
      PhaseResult& pr = report.phase_results[p];
      if (!pr.evaluated) continue;
      double v2_p = 1.0;
      if (built.has_vfi) {
        v2_p = vfi_network_v2_factor(plans[p].node_traffic,
                                     winoc::quadrant_clusters(),
                                     built.vfi.vfi2,
                                     table_->max().voltage_v);
      }
      const double flits_p = pr.rate_packets_per_cycle *
                             params.network_clock_hz * pr.time_s *
                             static_cast<double>(profile.packet_flits);
      pr.net_dynamic_j = pr.net.energy_per_flit_j * flits_p * v2_p;
      report.net_dynamic_j += pr.net_dynamic_j;
    }
  }
  report.net_static_j = models_.noc.static_energy_j(n, built.wi_count,
                                                    report.exec_s) *
                        net_v2_factor;

  if (tele != nullptr) {
    // One interval per VFI island spanning the whole run at its operating
    // point — the "VFI island" rows of the trace.
    if (built.has_vfi) {
      const auto& points = params.use_vfi2 ? built.vfi.vfi2 : built.vfi.vfi1;
      for (std::size_t k = 0; k < points.size(); ++k) {
        char name[32];
        std::snprintf(name, sizeof name, "%.2f GHz", points[k].freq_hz / 1e9);
        const telemetry::TrackId track =
            tele->tracer().track(label, "VFI island " + std::to_string(k));
        tele->tracer().complete(track, name, 0.0, report.exec_s * 1e6,
                                {{"freq_ghz", points[k].freq_hz / 1e9},
                                 {"voltage_v", points[k].voltage_v}});
        tele->metrics()
            .gauge(label + ".vfi.island" + std::to_string(k) + ".freq_ghz")
            .set(points[k].freq_hz / 1e9);
      }
    }
    auto& metrics = tele->metrics();
    metrics.gauge(label + ".sys.exec_s").set(report.exec_s);
    metrics.gauge(label + ".sys.energy_j").set(report.total_energy_j());
    metrics.gauge(label + ".sys.edp_js").set(report.edp_js());
    metrics.gauge(label + ".sys.mem_scale").set(report.mem_scale);
    metrics.gauge(label + ".sys.avg_noc_latency_cycles")
        .set(report.net.avg_latency_cycles);
    if (report.phase_resolved) {
      for (std::size_t p = 0; p < workload::kPhaseCount; ++p) {
        const PhaseResult& pr = report.phase_results[p];
        if (!pr.evaluated) continue;
        const std::string prefix =
            label + ".sys.phase." +
            workload::phase_name(static_cast<workload::Phase>(p));
        metrics.gauge(prefix + ".latency_cycles")
            .set(pr.net.avg_latency_cycles);
        metrics.gauge(prefix + ".mem_scale").set(pr.mem_scale);
      }
    }
  }
  return report;
}

SystemComparison compare_systems(const workload::AppProfile& profile,
                                 const FullSystemSim& sim,
                                 const PlatformParams& base_params) {
  PlatformParams params = base_params;
  SystemComparison cmp;

  params.kind = SystemKind::kNvfiMesh;
  cmp.nvfi_mesh = sim.run(profile, params);
  // Per-phase NVFI latencies feed the VFI runs as their references; on a
  // profile without phase traffic this degenerates to the whole-run scalar.
  const PhaseBaselines baseline = phase_baselines(cmp.nvfi_mesh);

  params.kind = SystemKind::kVfiMesh;
  cmp.vfi_mesh = sim.run(profile, params, baseline);

  params.kind = SystemKind::kVfiWinoc;
  cmp.vfi_winoc = sim.run(profile, params, baseline);
  return cmp;
}

}  // namespace vfimr::sysmodel
