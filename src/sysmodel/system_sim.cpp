#include "sysmodel/system_sim.hpp"

#include <algorithm>
#include <cstdio>

#include "common/require.hpp"
#include "telemetry/telemetry.hpp"

namespace vfimr::sysmodel {

FullSystemSim::FullSystemSim() : FullSystemSim(Models{}) {}

FullSystemSim::FullSystemSim(Models models, const power::VfTable& table)
    : models_{std::move(models)}, table_{&table} {}

namespace {

/// Memory fraction of a task set's nominal task time.
double mem_fraction(const workload::TaskSet& spec, double fmax) {
  const double compute_s = spec.cycles_mean / fmax;
  const double total = compute_s + spec.mem_seconds_mean;
  return total > 0.0 ? spec.mem_seconds_mean / total : 0.0;
}

double serial_time(const workload::SerialStage& stage, double freq_hz,
                   double mem_scale) {
  return stage.cycles / freq_hz + stage.mem_seconds * mem_scale;
}

}  // namespace

double vfi_network_v2_factor(const Matrix& node_traffic,
                             const std::vector<std::size_t>& node_cluster,
                             const std::vector<power::VfPoint>& cluster_vf,
                             double v_nom) {
  VFIMR_REQUIRE(v_nom > 0.0);
  VFIMR_REQUIRE_MSG(node_traffic.rows() == node_traffic.cols(),
                    "traffic matrix must be square");
  VFIMR_REQUIRE_MSG(node_cluster.size() == node_traffic.rows(),
                    "cluster map covers " << node_cluster.size()
                                          << " nodes but the traffic matrix "
                                          << "has " << node_traffic.rows());
  const std::size_t n = node_traffic.rows();
  double weighted = 0.0;
  double total = 0.0;
  for (std::size_t s = 0; s < n; ++s) {
    for (std::size_t d = 0; d < n; ++d) {
      const double w = node_traffic(s, d);
      if (w <= 0.0) continue;
      VFIMR_REQUIRE_MSG(node_cluster[s] < cluster_vf.size() &&
                            node_cluster[d] < cluster_vf.size(),
                        "node cluster id out of range of the V/F assignment");
      const double vs = cluster_vf[node_cluster[s]].voltage_v;
      const double vd = cluster_vf[node_cluster[d]].voltage_v;
      // A packet spends roughly half its hops in each endpoint's island.
      weighted += w * 0.5 * (vs * vs + vd * vd) / (v_nom * v_nom);
      total += w;
    }
  }
  return total > 0.0 ? weighted / total : 1.0;
}

SystemReport FullSystemSim::run(const workload::AppProfile& profile,
                                const PlatformParams& params,
                                double baseline_latency_cycles) const {
  const std::size_t n = profile.threads;
  VFIMR_REQUIRE(profile.utilization.size() == n);

  SystemReport report;
  report.kind = params.kind;

  // ---- Telemetry (nullable; every hook below is gated on `tele`).
  telemetry::TelemetrySink* const tele = params.telemetry;
  const std::string label =
      tele != nullptr ? telemetry_label(profile, params) : std::string{};

  // ---- Interconnect: build + cycle-accurate evaluation.
  BuiltPlatform built = build_platform(profile, params, *table_);
  report.net = evaluate_network(built, profile, params, models_.noc);
  report.has_vfi = built.has_vfi;
  if (built.has_vfi) report.vfi = built.vfi;
  report.resilience.noc_fault_events = report.net.metrics.fault_events;
  report.resilience.noc_route_rebuilds = report.net.metrics.route_rebuilds;
  report.resilience.noc_retry_backoffs = report.net.metrics.retry_backoffs;
  report.resilience.packets_lost = report.net.metrics.packets_lost;
  report.resilience.flits_lost = report.net.metrics.flits_lost;

  report.baseline_latency_cycles = baseline_latency_cycles > 0.0
                                       ? baseline_latency_cycles
                                       : report.net.avg_latency_cycles;
  const double latency_ratio =
      report.baseline_latency_cycles > 0.0
          ? report.net.avg_latency_cycles / report.baseline_latency_cycles
          : 1.0;
  const double s = profile.net_sensitivity;
  report.mem_scale = (1.0 - s) + s * latency_ratio;

  // ---- Per-thread operating points.
  const double fmax = table_->max().freq_hz;
  std::vector<power::VfPoint> vf(n, table_->max());
  if (built.has_vfi) {
    for (std::size_t t = 0; t < n; ++t) {
      vf[t] = built.vfi.vf_of_thread(t, params.use_vfi2);
    }
  }
  std::vector<SimCore> cores(n);
  std::vector<SimCore> nominal_cores(n);
  for (std::size_t t = 0; t < n; ++t) {
    cores[t] = SimCore{vf[t].freq_hz, vf[t].freq_hz / fmax};
    nominal_cores[t] = SimCore{fmax, 1.0};
  }

  const std::size_t master =
      profile.master_threads.empty() ? 0 : profile.master_threads.front();
  const double f_master = vf[master].freq_hz;

  // Same task draws for every system configuration: the RNG depends only on
  // the application, so reports are directly comparable.
  Rng task_rng{0xF00Dull ^ (static_cast<std::uint64_t>(profile.app) << 8)};

  // Parallel-phase energy: per-thread utilization from the profile,
  // stretched by the busy-time dilation at the thread's frequency and
  // normalized by the phase's overall dilation.
  auto parallel_energy = [&](const workload::TaskSet& spec,
                             const TaskSimResult& actual,
                             const TaskSimResult& nominal) {
    const double mf = mem_fraction(spec, fmax);
    const double dilation = nominal.makespan_s > 0.0
                                ? actual.makespan_s / nominal.makespan_s
                                : 1.0;
    double energy = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      const double stretch =
          (1.0 - mf) * fmax / cores[t].freq_hz + mf * report.mem_scale;
      const double u = std::min(
          1.0, profile.utilization[t] * stretch / std::max(dilation, 1e-9));
      energy += models_.core.energy_j(u, vf[t], actual.makespan_s);
    }
    return energy;
  };

  auto serial_energy = [&](double seconds) {
    double energy = models_.core.energy_j(1.0, vf[master], seconds);
    for (std::size_t t = 0; t < n; ++t) {
      if (t != master) energy += models_.core.energy_j(0.0, vf[t], seconds);
    }
    return energy;
  };

  // Core-failure draws: a fresh, seed-derived plan per parallel phase, so a
  // fixed (profile, params) pair replays bit-identically while map and
  // reduce phases of different iterations see independent failures.  The
  // *nominal* (fault-free, f_max) runs never see faults — they stay the
  // energy-normalization reference.
  const bool core_faults_on = params.faults.core_fail_prob > 0.0;
  std::uint64_t fault_phase = 0;
  auto draw_core_faults = [&]() {
    return faults::make_core_faults(
        n, params.faults.core_fail_prob,
        params.faults.seed ^
            (static_cast<std::uint64_t>(profile.app) << 20) ^
            (++fault_phase * 0x9E3779B97F4A7C15ull));
  };
  auto account_phase = [&](const TaskSimResult& actual) {
    report.resilience.core_failures += actual.cores_failed;
    report.resilience.tasks_reexecuted += actual.tasks_reexecuted;
    report.resilience.wasted_core_seconds += actual.wasted_seconds;
  };

  // Phase spans chain end to end on the simulated-time axis (1 simulated
  // second = 1e6 trace µs); `sim_us` is the running cursor and doubles as
  // the t0 of each parallel phase's task-level trace.
  telemetry::TrackId phases_track = 0;
  double sim_us = 0.0;
  if (tele != nullptr) phases_track = tele->tracer().track(label, "phases");
  auto trace_phase = [&](const char* name, double seconds) {
    if (tele != nullptr && seconds > 0.0) {
      tele->tracer().complete(phases_track, name, sim_us, seconds * 1e6);
    }
    sim_us += seconds * 1e6;
  };
  // Busy/idle attribution, whole-chip and (on VFI systems) per island.
  auto note_phase = [&](const TaskSimResult& actual) {
    if (tele == nullptr) return;
    auto& metrics = tele->metrics();
    double busy = 0.0;
    for (std::size_t t = 0; t < n; ++t) {
      busy += actual.busy_seconds[t];
      if (built.has_vfi) {
        const std::string island =
            label + ".vfi.island" + std::to_string(built.vfi.assignment[t]);
        metrics.gauge(island + ".busy_s").add(actual.busy_seconds[t]);
        metrics.gauge(island + ".idle_s")
            .add(actual.makespan_s - actual.busy_seconds[t]);
      }
    }
    metrics.gauge(label + ".sys.busy_s").add(busy);
    metrics.gauge(label + ".sys.idle_s")
        .add(actual.makespan_s * static_cast<double>(n) - busy);
  };

  for (int iter = 0; iter < profile.iterations; ++iter) {
    // Library init (serial, master).
    const double t_li =
        serial_time(profile.phases.lib_init, f_master, report.mem_scale);
    report.phases.lib_init_s += t_li;
    report.core_energy_j += serial_energy(t_li);
    trace_phase("lib_init", t_li);

    const StealingPolicy policy =
        built.has_vfi ? params.vfi_stealing : StealingPolicy::kPhoenixDefault;

    // Map.
    const auto map_tasks =
        materialize_tasks(profile.phases.map, profile.utilization, task_rng);
    std::vector<faults::CoreFault> map_faults;
    if (core_faults_on) map_faults = draw_core_faults();
    PhaseTelemetry map_pt{tele, label, label, "map", sim_us};
    const TaskSimResult map_actual =
        simulate_phase(map_tasks, cores, report.mem_scale, policy,
                       core_faults_on ? &map_faults : nullptr,
                       tele != nullptr ? &map_pt : nullptr);
    // The nominal (f_max, fault-free) normalization run stays untraced.
    const TaskSimResult map_nominal = simulate_phase(
        map_tasks, nominal_cores, 1.0, StealingPolicy::kPhoenixDefault);
    report.phases.map_s += map_actual.makespan_s;
    report.core_energy_j +=
        parallel_energy(profile.phases.map, map_actual, map_nominal);
    account_phase(map_actual);
    note_phase(map_actual);
    trace_phase("map", map_actual.makespan_s);

    // Reduce.
    const auto red_tasks = materialize_tasks(profile.phases.reduce,
                                             profile.utilization, task_rng);
    std::vector<faults::CoreFault> red_faults;
    if (core_faults_on) red_faults = draw_core_faults();
    PhaseTelemetry red_pt{tele, label, label, "reduce", sim_us};
    const TaskSimResult red_actual =
        simulate_phase(red_tasks, cores, report.mem_scale, policy,
                       core_faults_on ? &red_faults : nullptr,
                       tele != nullptr ? &red_pt : nullptr);
    const TaskSimResult red_nominal = simulate_phase(
        red_tasks, nominal_cores, 1.0, StealingPolicy::kPhoenixDefault);
    report.phases.reduce_s += red_actual.makespan_s;
    report.core_energy_j +=
        parallel_energy(profile.phases.reduce, red_actual, red_nominal);
    account_phase(red_actual);
    note_phase(red_actual);
    trace_phase("reduce", red_actual.makespan_s);

    // Merge (serial, master).
    const double t_merge =
        serial_time(profile.phases.merge, f_master, report.mem_scale);
    report.phases.merge_s += t_merge;
    report.core_energy_j += serial_energy(t_merge);
    trace_phase("merge", t_merge);
  }

  report.exec_s = report.phases.total_s();
  // Traffic only flows while cores make progress; network energy below uses
  // the pre-stall execution time.
  const double traffic_exec_s = report.exec_s;

  // ---- Lost-packet stalls.  The NoC run is a sample of the network under
  // this traffic; extrapolate its loss rate over the whole execution and
  // charge each lost packet a receiver-timeout stall on its destination
  // core.  With losses spread over n cores the added wall-clock is
  //   losses/cycle x (exec_s x f_net) x (timeout / f_net) / n
  // — the network clock cancels.  Zero losses leave exec_s untouched.
  if (report.net.metrics.packets_lost > 0 && report.net.metrics.cycles > 0) {
    const double loss_per_cycle =
        static_cast<double>(report.net.metrics.packets_lost) /
        static_cast<double>(report.net.metrics.cycles);
    const double stall_s =
        loss_per_cycle * report.exec_s *
        static_cast<double>(params.faults.loss_timeout_cycles) /
        static_cast<double>(n);
    report.resilience.net_stall_seconds = stall_s;
    report.exec_s += stall_s;
    // Stalled cores sit idle at their operating point.
    for (std::size_t t = 0; t < n; ++t) {
      report.core_energy_j += models_.core.energy_j(0.0, vf[t], stall_s);
    }
    if (tele != nullptr) {
      tele->tracer().complete(phases_track, "net stall", sim_us,
                              stall_s * 1e6,
                              {{"packets_lost",
                                static_cast<double>(
                                    report.net.metrics.packets_lost)}});
      tele->metrics().gauge(label + ".sys.net_stall_s").add(stall_s);
    }
  }

  // ---- Network energy over the whole run.  On VFI systems the routers and
  // links inside each island run at the island's voltage, so interconnect
  // dynamic energy scales with the traffic-weighted average V^2 — the
  // "energy reduction on both processing cores and interconnection network"
  // the paper targets.
  double net_v2_factor = 1.0;
  if (built.has_vfi) {
    net_v2_factor =
        vfi_network_v2_factor(built.node_traffic, winoc::quadrant_clusters(),
                              built.vfi.vfi2, table_->max().voltage_v);
  }
  const double packets_per_cycle = profile.traffic.sum();
  const double flits = packets_per_cycle * params.network_clock_hz *
                       traffic_exec_s *
                       static_cast<double>(profile.packet_flits);
  report.net_dynamic_j = report.net.energy_per_flit_j * flits * net_v2_factor;
  report.net_static_j = models_.noc.static_energy_j(n, built.wi_count,
                                                    report.exec_s) *
                        net_v2_factor;

  if (tele != nullptr) {
    // One interval per VFI island spanning the whole run at its operating
    // point — the "VFI island" rows of the trace.
    if (built.has_vfi) {
      const auto& points = params.use_vfi2 ? built.vfi.vfi2 : built.vfi.vfi1;
      for (std::size_t k = 0; k < points.size(); ++k) {
        char name[32];
        std::snprintf(name, sizeof name, "%.2f GHz", points[k].freq_hz / 1e9);
        const telemetry::TrackId track =
            tele->tracer().track(label, "VFI island " + std::to_string(k));
        tele->tracer().complete(track, name, 0.0, report.exec_s * 1e6,
                                {{"freq_ghz", points[k].freq_hz / 1e9},
                                 {"voltage_v", points[k].voltage_v}});
        tele->metrics()
            .gauge(label + ".vfi.island" + std::to_string(k) + ".freq_ghz")
            .set(points[k].freq_hz / 1e9);
      }
    }
    auto& metrics = tele->metrics();
    metrics.gauge(label + ".sys.exec_s").set(report.exec_s);
    metrics.gauge(label + ".sys.energy_j").set(report.total_energy_j());
    metrics.gauge(label + ".sys.edp_js").set(report.edp_js());
    metrics.gauge(label + ".sys.mem_scale").set(report.mem_scale);
    metrics.gauge(label + ".sys.avg_noc_latency_cycles")
        .set(report.net.avg_latency_cycles);
  }
  return report;
}

SystemComparison compare_systems(const workload::AppProfile& profile,
                                 const FullSystemSim& sim,
                                 const PlatformParams& base_params) {
  PlatformParams params = base_params;
  SystemComparison cmp;

  params.kind = SystemKind::kNvfiMesh;
  cmp.nvfi_mesh = sim.run(profile, params);
  const double baseline = cmp.nvfi_mesh.net.avg_latency_cycles;

  params.kind = SystemKind::kVfiMesh;
  cmp.vfi_mesh = sim.run(profile, params, baseline);

  params.kind = SystemKind::kVfiWinoc;
  cmp.vfi_winoc = sim.run(profile, params, baseline);
  return cmp;
}

}  // namespace vfimr::sysmodel
