#include "sysmodel/net_eval.hpp"

#include <algorithm>
#include <cstring>
#include <numeric>
#include <string_view>

#include "common/require.hpp"
#include "noc/analytical.hpp"
#include "noc/traffic.hpp"
#include "store/codec.hpp"
#include "store/eval_store.hpp"
#include "telemetry/telemetry.hpp"

namespace vfimr::sysmodel {

namespace {

// ---- Cache-key serialization (shared by the evaluation memo below and the
// per-platform analytical-model memo).  A key is the raw bytes of every
// input that can steer the computation; equal keys therefore denote the
// exact same result.  Exactness over compactness: no hashing, so no
// collision can ever alias two different computations.

template <typename T>
void put(std::string& key, const T& v) {
  static_assert(std::is_trivially_copyable_v<T>);
  const char* p = reinterpret_cast<const char*>(&v);
  key.append(p, sizeof(T));
}

void put_matrix(std::string& key, const Matrix& m) {
  put(key, m.rows());
  put(key, m.cols());
  if (!m.data().empty()) {
    key.append(reinterpret_cast<const char*>(m.data().data()),
               m.data().size() * sizeof(double));
  }
}

void require_valid(const PlatformParams& params) {
  VFIMR_REQUIRE_MSG(params.network_clock_hz > 0.0,
                    "network_clock_hz must be positive, got "
                        << params.network_clock_hz);
  VFIMR_REQUIRE_MSG(params.router_pipeline_cycles >= 1,
                    "router_pipeline_cycles must be at least 1");
  VFIMR_REQUIRE_MSG(params.sim_cycles > 0,
                    "sim_cycles must be positive (no injection window)");
}

/// The effective SimConfig both fidelity bands evaluate under: the caller's
/// noc_sim with the telemetry sink attached, the VFI clustering defaulted
/// and the rate-based fault spec expanded into a concrete schedule.
noc::SimConfig resolved_sim_config(const BuiltPlatform& platform,
                                   const PlatformParams& params,
                                   const std::string& label) {
  noc::SimConfig sim_cfg = params.noc_sim;
  if (params.telemetry != nullptr && sim_cfg.telemetry == nullptr) {
    sim_cfg.telemetry = params.telemetry;
    sim_cfg.telemetry_label = label;
  }
  if (platform.has_vfi && sim_cfg.node_cluster.empty()) {
    // VFI systems pay mixed-clock synchronizer latency at island borders.
    sim_cfg.node_cluster = winoc::quadrant_clusters();
  }
  if (params.faults.any_noc() && sim_cfg.faults.empty()) {
    // Expand the rate-based spec into a concrete schedule over this
    // platform's actual links / switches / WIs.  Seeded by (spec, traffic
    // seed) so the same PlatformParams replays bit-identically.
    const auto& g = platform.topology.graph;
    std::vector<std::uint32_t> edge_ids(g.edge_count());
    std::iota(edge_ids.begin(), edge_ids.end(), 0u);
    std::vector<std::uint32_t> router_ids(g.node_count());
    std::iota(router_ids.begin(), router_ids.end(), 0u);
    std::vector<std::uint32_t> wi_ids;
    for (const auto& wi : platform.wireless.interfaces) {
      wi_ids.push_back(static_cast<std::uint32_t>(wi.node));
    }
    // Faults are drawn over the injection window only: the drain phase ends
    // as soon as the network empties (usually a handful of cycles), so
    // events scheduled past sim_cycles would mostly never fire.
    sim_cfg.faults = faults::make_noc_schedule(
        params.faults, edge_ids, router_ids, wi_ids, params.sim_cycles,
        params.faults.seed ^ params.traffic_seed);
  }
  return sim_cfg;
}

/// Shared post-processing: derive the NetworkEval figures from raw Metrics.
/// The pipeline correction and the per-flit energy math are identical for
/// both bands, so their results stay comparable term by term.
NetworkEval finalize_eval(const noc::Metrics& metrics, bool drained,
                          const PlatformParams& params,
                          const power::NocPowerModel& noc_power) {
  NetworkEval eval;
  eval.metrics = metrics;
  eval.drained = drained;
  eval.avg_latency_cycles = eval.metrics.avg_latency();
  eval.flits_delivered = eval.metrics.flits_ejected;
  if (eval.flits_delivered > 0 && params.router_pipeline_cycles > 1) {
    const double wire_hops_per_flit =
        static_cast<double>(eval.metrics.energy.wire_hops) /
        static_cast<double>(eval.flits_delivered);
    eval.avg_latency_cycles +=
        wire_hops_per_flit *
        static_cast<double>(params.router_pipeline_cycles - 1);
  }
  // Lost packets are deliberately NOT folded into avg_latency_cycles: the
  // delivered packets' average already reflects the degraded network (longer
  // reroutes, backoff waits), while a loss is a *stall* of the destination
  // core, charged as execution time in FullSystemSim::run.  Folding a
  // timeout that is hundreds of mean latencies into the average would let a
  // brief router outage multiply the whole run's memory time.
  eval.wireless_utilization = eval.metrics.wireless_utilization();
  if (eval.flits_delivered > 0) {
    eval.energy_per_flit_j = noc_power.energy_j(eval.metrics.energy) /
                             static_cast<double>(eval.flits_delivered);
  }
  return eval;
}

}  // namespace

NetworkEval evaluate_network_traffic(const BuiltPlatform& platform,
                                     const Matrix& node_traffic,
                                     std::uint32_t packet_flits,
                                     const PlatformParams& params,
                                     const power::NocPowerModel& noc_power,
                                     const std::string& label) {
  require_valid(params);
  const noc::SimConfig sim_cfg = resolved_sim_config(platform, params, label);
  noc::Network net{platform.topology, *platform.routing, sim_cfg,
                   platform.wireless};
  noc::MatrixTraffic gen{node_traffic, packet_flits, params.traffic_seed};
  net.run(&gen, params.sim_cycles);
  const bool drained = net.drain(params.drain_cycles);
  return finalize_eval(net.metrics(), drained, params, noc_power);
}

NetworkEval evaluate_network_analytical(const BuiltPlatform& platform,
                                        const Matrix& node_traffic,
                                        std::uint32_t packet_flits,
                                        const PlatformParams& params,
                                        const power::NocPowerModel& noc_power,
                                        const std::string& label) {
  require_valid(params);
  const noc::SimConfig sim_cfg = resolved_sim_config(platform, params, label);

  noc::AnalyticalConfig cfg;
  cfg.sim_cycles = params.sim_cycles;
  cfg.node_cluster = sim_cfg.node_cluster;
  cfg.sync_penalty_cycles = sim_cfg.sync_penalty_cycles;
  cfg.faults = sim_cfg.faults;
  cfg.fault_reroute_wireless_cost = sim_cfg.fault_reroute_wireless_cost;

  // The model is traffic-independent (routes + fault slices only), so it is
  // memoized on the platform, keyed on the analytical-relevant config.  The
  // phase evaluations of a run — and, with a shared PlatformCache, every
  // sweep point over the same platform — reuse one construction, which is
  // what keeps the analytical band's per-evaluation cost flat while the
  // cycle-accurate band's grows with the injection window.
  std::string model_key;
  put(model_key, cfg.sim_cycles);
  put(model_key, cfg.node_cluster.size());
  for (const std::size_t c : cfg.node_cluster) put(model_key, c);
  put(model_key, cfg.sync_penalty_cycles);
  put(model_key, cfg.fault_reroute_wireless_cost);
  put(model_key, cfg.faults.size());
  for (const auto& f : cfg.faults.events()) {
    put(model_key, static_cast<std::uint32_t>(f.kind));
    put(model_key, f.id);
    put(model_key, f.at_cycle);
    put(model_key, f.until_cycle);
  }
  std::shared_ptr<const noc::AnalyticalNocModel> model =
      platform.analytical_models->find(model_key);
  if (model == nullptr) {
    model = platform.analytical_models->insert(
        std::move(model_key),
        std::make_shared<const noc::AnalyticalNocModel>(
            platform.topology, *platform.routing, platform.wireless, cfg));
  }
  noc::AnalyticalDetail detail;
  const noc::Metrics metrics =
      model->evaluate(node_traffic, packet_flits, &detail);
  // The analytical twin of "did the network drain": no link or channel past
  // the utilization clamp, i.e. the offered load has a steady state.
  const bool drained =
      std::max(detail.max_link_utilization, detail.max_channel_utilization) <=
      cfg.max_utilization;
  return finalize_eval(metrics, drained, params, noc_power);
}

NetworkEval evaluate_network_banded(const BuiltPlatform& platform,
                                    const Matrix& node_traffic,
                                    std::uint32_t packet_flits,
                                    const PlatformParams& params,
                                    const power::NocPowerModel& noc_power,
                                    const std::string& label) {
  if (analytical_band(params.fidelity)) {
    return evaluate_network_analytical(platform, node_traffic, packet_flits,
                                       params, noc_power, label);
  }
  return evaluate_network_traffic(platform, node_traffic, packet_flits,
                                  params, noc_power, label);
}

namespace {

std::string cache_key(const BuiltPlatform& platform,
                      const Matrix& node_traffic, std::uint32_t packet_flits,
                      const PlatformParams& params,
                      const power::NocPowerModel& noc_power) {
  std::string key;
  key.reserve(512 + node_traffic.data().size() * sizeof(double));

  // Fidelity band first: an analytical and a cycle-accurate evaluation of
  // identical inputs are different computations and must never alias to one
  // memo entry.  kAuto and kAnalytical share the byte deliberately — they
  // are the same band (kAuto's cycle-accurate confirmations arrive as
  // separate kCycleAccurate requests).
  put(key, static_cast<std::uint8_t>(analytical_band(params.fidelity)));

  // System kind selects the routing algorithm (XY vs. up*/down*).
  put(key, static_cast<std::uint32_t>(params.kind));
  put(key, static_cast<std::uint8_t>(platform.has_vfi));

  // Topology: switch positions (wire lengths feed the energy model) and the
  // full edge list.
  const auto& topo = platform.topology;
  put(key, topo.node_count());
  for (const auto& pos : topo.positions) {
    put(key, pos.x_mm);
    put(key, pos.y_mm);
  }
  // Field-by-field: struct padding bytes are unspecified and must not leak
  // into the key.
  put(key, topo.graph.edge_count());
  for (const auto& e : topo.graph.edges()) {
    put(key, e.a);
    put(key, e.b);
    put(key, static_cast<std::uint32_t>(e.kind));
    put(key, e.length_mm);
  }

  // Wireless layout.
  put(key, platform.wireless.channel_count);
  put(key, platform.wireless.interfaces.size());
  for (const auto& wi : platform.wireless.interfaces) {
    put(key, wi.node);
    put(key, wi.channel);
  }

  // Offered traffic.
  put_matrix(key, node_traffic);
  put(key, packet_flits);
  put(key, params.traffic_seed);

  // Simulation window + latency correction.
  put(key, params.sim_cycles);
  put(key, params.drain_cycles);
  put(key, params.router_pipeline_cycles);

  // NoC simulator configuration (telemetry fields excluded: the traced run
  // is proven bit-identical to the untraced one).
  const auto& sim = params.noc_sim;
  put(key, sim.wire_buffer_depth);
  put(key, sim.wi_buffer_depth);
  put(key, sim.node_cluster.size());
  for (std::size_t c : sim.node_cluster) put(key, c);
  put(key, sim.sync_penalty_cycles);
  put(key, static_cast<std::uint8_t>(sim.reference_stepping));
  put(key, sim.fault_max_retries);
  put(key, sim.fault_backoff_base_cycles);
  put(key, sim.fault_reroute_wireless_cost);
  put(key, sim.faults.size());
  for (const auto& f : sim.faults.events()) {
    put(key, static_cast<std::uint32_t>(f.kind));
    put(key, f.id);
    put(key, f.at_cycle);
    put(key, f.until_cycle);
  }

  // Rate-based fault spec (expanded into a schedule inside the evaluation;
  // only the NoC-relevant fields matter here).
  put(key, params.faults.link_rate);
  put(key, params.faults.router_rate);
  put(key, params.faults.wi_rate);
  put(key, params.faults.transient_fraction);
  put(key, params.faults.mean_repair_cycles);
  put(key, params.faults.seed);

  // Energy constants (scale energy_per_flit_j).
  put(key, noc_power.params());
  return key;
}

}  // namespace

NetworkEval NetworkEvaluator::evaluate(const BuiltPlatform& platform,
                                       const Matrix& node_traffic,
                                       std::uint32_t packet_flits,
                                       const PlatformParams& params,
                                       const power::NocPowerModel& noc_power,
                                       const std::string& label) {
  const std::string key =
      cache_key(platform, node_traffic, packet_flits, params, noc_power);
  const bool analytical = analytical_band(params.fidelity);

  std::shared_ptr<Entry> entry;
  {
    std::lock_guard<std::mutex> lock{mutex_};
    auto [it, fresh] = cache_.try_emplace(key);
    if (fresh) it->second = std::make_shared<Entry>();
    entry = it->second;
  }

  // Hit/miss classification happens under the entry mutex, where the tier
  // that actually resolves the request is known: memory (entry ready), disk
  // (store probe decodes), or compute.  A thread that blocked behind the
  // computing thread counts a memory hit — by the time it runs, that is
  // what it got.
  const std::string band = analytical ? "analytical" : "cycle";
  const auto count = [&](std::atomic<std::uint64_t>& counter,
                         const char* total_name, bool band_split) {
    counter.fetch_add(1, std::memory_order_relaxed);
    if (params.telemetry != nullptr) {
      auto& metrics = params.telemetry->metrics();
      metrics.counter(total_name).add(1);
      if (band_split) {
        const std::string_view suffix =
            std::string_view{total_name}.substr(sizeof("net_eval.") - 1);
        metrics.counter("net_eval." + band + "." + std::string{suffix})
            .add(1);
      }
    }
  };

  std::lock_guard<std::mutex> lock{entry->mutex};
  if (entry->ready) {
    count(analytical ? analytical_hits_ : cycle_hits_, "net_eval.cache_hits",
          /*band_split=*/true);
    return entry->value;
  }

  if (store_ != nullptr) {
    // Disk tier: same content-addressed key, domain-prefixed so evaluator
    // records can never alias another record family in a shared store.
    std::string bytes;
    if (store_->get(
            store::domain_key(store::KeyDomain::kNetworkEval, key), bytes) &&
        store::decode_network_eval(bytes, entry->value)) {
      entry->ready = true;
      count(disk_hits_, "net_eval.disk_hits", /*band_split=*/false);
      if (params.telemetry != nullptr) {
        params.telemetry->metrics().counter("store.bytes").add(
            static_cast<std::uint64_t>(bytes.size()));
      }
      return entry->value;
    }
    count(disk_misses_, "net_eval.disk_misses", /*band_split=*/false);
  }

  count(analytical ? analytical_misses_ : cycle_misses_,
        "net_eval.cache_misses", /*band_split=*/true);
  entry->value = evaluate_network_banded(platform, node_traffic, packet_flits,
                                         params, noc_power, label);
  entry->ready = true;
  if (store_ != nullptr) {
    std::string store_key =
        store::domain_key(store::KeyDomain::kNetworkEval, key);
    std::string value = store::encode_network_eval(entry->value);
    if (params.telemetry != nullptr) {
      params.telemetry->metrics().counter("store.bytes").add(
          static_cast<std::uint64_t>(store_key.size() + value.size()));
    }
    store_->put(store_key, std::move(value));
  }
  return entry->value;
}

void NetworkEvaluator::note_promotion(telemetry::TelemetrySink* sink) {
  promotions_.fetch_add(1, std::memory_order_relaxed);
  if (sink != nullptr) {
    sink->metrics().counter("net_eval.promotions").add(1);
  }
}

std::size_t NetworkEvaluator::size() const {
  std::lock_guard<std::mutex> lock{mutex_};
  return cache_.size();
}

void NetworkEvaluator::clear() {
  std::lock_guard<std::mutex> lock{mutex_};
  cache_.clear();
}

}  // namespace vfimr::sysmodel
