#include "sysmodel/task_sim.hpp"

#include <algorithm>
#include <cmath>
#include <deque>
#include <limits>

#include "common/require.hpp"
#include "mapreduce/scheduler.hpp"
#include "telemetry/telemetry.hpp"

namespace vfimr::sysmodel {

namespace {

/// Resolved telemetry state for one simulate_phase call.  All pointers null
/// when the caller passed no sink, so every hook below is one pointer test.
struct PhaseTele {
  telemetry::Tracer* tracer = nullptr;
  std::vector<telemetry::TrackId> core_track;
  telemetry::Counter* steals = nullptr;
  telemetry::Counter* reexecs = nullptr;
  telemetry::Counter* deaths = nullptr;
  const char* phase = "phase";
  double t0 = 0.0;
  std::uint64_t span_budget = 0;

  static PhaseTele make(const PhaseTelemetry* pt, std::size_t cores) {
    PhaseTele tele;
    if (pt == nullptr || pt->sink == nullptr) return tele;
    auto& sink = *pt->sink;
    tele.tracer = &sink.tracer();
    tele.core_track.reserve(cores);
    for (std::size_t i = 0; i < cores; ++i) {
      // Tracer::track dedups by (process, thread), so successive phases of
      // one run land on the same per-core rows.
      tele.core_track.push_back(
          sink.tracer().track(pt->process, "core " + std::to_string(i)));
    }
    tele.steals = &sink.metrics().counter(pt->label + ".sys.steals");
    tele.reexecs =
        &sink.metrics().counter(pt->label + ".sys.tasks_reexecuted");
    tele.deaths = &sink.metrics().counter(pt->label + ".sys.core_failures");
    tele.phase = pt->phase;
    tele.t0 = pt->t0_us;
    tele.span_budget = sink.config().max_task_events_per_phase;
    return tele;
  }
};

}  // namespace

std::vector<SimTask> materialize_tasks(const workload::TaskSet& spec,
                                       Rng& rng) {
  std::vector<SimTask> tasks(spec.count);
  for (auto& t : tasks) {
    t.cycles = std::max(
        0.0, rng.normal(spec.cycles_mean, spec.cycles_mean * spec.cycles_cv));
    t.mem_seconds = std::max(
        0.0, rng.normal(spec.mem_seconds_mean,
                        spec.mem_seconds_mean * spec.mem_cv));
  }
  return tasks;
}

std::vector<SimTask> materialize_tasks(const workload::TaskSet& spec,
                                       const std::vector<double>& utilization,
                                       Rng& rng) {
  auto tasks = materialize_tasks(spec, rng);
  if (utilization.empty()) return tasks;
  double mean_u = 0.0;
  for (double u : utilization) mean_u += u;
  mean_u /= static_cast<double>(utilization.size());
  if (mean_u <= 0.0) return tasks;

  const std::size_t cores = utilization.size();
  for (std::size_t j = 0; j < tasks.size(); ++j) {
    // Owner of task j's data block under the Phoenix block split — derived
    // from the actual block boundaries [i*n/c, (i+1)*n/c), not the (wrong
    // for n % c != 0) approximation j*c/n.
    const std::size_t owner = block_owner(j, tasks.size(), cores);
    double m = std::clamp(utilization[owner] / mean_u, 0.5, 1.6);
    // The shift may not drive memory time negative (time conservation).
    if (tasks[j].cycles > 0.0) {
      m = std::min(
          m, 1.0 + tasks[j].mem_seconds * kNominalFreqHz / tasks[j].cycles);
    }
    // Shift work between compute and memory, preserving time at f_max.
    const double moved = tasks[j].cycles * (1.0 - m);
    tasks[j].cycles *= m;
    tasks[j].mem_seconds += moved / kNominalFreqHz;
  }
  return tasks;
}

TaskSimResult simulate_phase(const std::vector<SimTask>& tasks,
                             const std::vector<SimCore>& cores,
                             double mem_scale, StealingPolicy policy,
                             const std::vector<faults::CoreFault>* core_faults,
                             const PhaseTelemetry* telemetry) {
  const std::size_t c = cores.size();
  const std::size_t n = tasks.size();
  VFIMR_REQUIRE(c > 0);
  VFIMR_REQUIRE(mem_scale > 0.0);

  TaskSimResult result;
  result.busy_seconds.assign(c, 0.0);
  result.tasks_executed.assign(c, 0);
  if (n == 0) return result;

  PhaseTele tele = PhaseTele::make(telemetry, c);

  // Eq. 3's f_max: the fastest core actually present in this configuration.
  double fmax = 0.0;
  for (const auto& core : cores) fmax = std::max(fmax, core.freq_hz);
  std::vector<double> rel(c, 1.0);
  for (std::size_t i = 0; i < c; ++i) {
    VFIMR_REQUIRE(cores[i].freq_hz > 0.0);
    rel[i] = cores[i].freq_hz / fmax;
  }

  // ---- Initial distribution: block split (task j's data belongs to core
  // j*C/N).  Under kVfiAssignment a slow core keeps only its Eq. 3 share of
  // its own block; the leftover (still that block's data) is re-assigned
  // round-robin to the f_max cores.
  std::vector<std::deque<std::size_t>> queues(c);
  {
    std::vector<std::size_t> leftovers;
    for (std::size_t i = 0; i < c; ++i) {
      const std::size_t lo = i * n / c;
      const std::size_t hi = (i + 1) * n / c;
      std::size_t keep = hi - lo;
      if (policy == StealingPolicy::kVfiAssignment && rel[i] < 1.0) {
        // Rounded (not floored) share: the assignment reading of Eq. 3 aims
        // for proportional load, and flooring at small N/C (e.g. 4 tasks per
        // core) would under-assign slow cores by a whole task.
        const auto share = static_cast<std::size_t>(std::llround(
            static_cast<double>(n) / static_cast<double>(c) * rel[i]));
        keep = std::min(keep, share);
      }
      for (std::size_t t = lo; t < lo + keep; ++t) queues[i].push_back(t);
      for (std::size_t t = lo + keep; t < hi; ++t) leftovers.push_back(t);
    }
    if (!leftovers.empty()) {
      std::vector<std::size_t> fast;
      for (std::size_t i = 0; i < c; ++i) {
        if (rel[i] >= 1.0) fast.push_back(i);
      }
      VFIMR_REQUIRE_MSG(!fast.empty(), "no core at f_max");
      for (std::size_t k = 0; k < leftovers.size(); ++k) {
        queues[fast[k % fast.size()]].push_back(leftovers[k]);
      }
    }
  }

  std::vector<std::size_t> cap(c, std::numeric_limits<std::size_t>::max());
  if (policy == StealingPolicy::kVfiHardCap) {
    for (std::size_t i = 0; i < c; ++i) {
      if (rel[i] < 1.0) cap[i] = mr::stealing_cap(n, c, rel[i]);
    }
  }

  // Core failure instants: at_fraction of the phase's ideal (fault-free,
  // perfectly balanced) makespan.  Infinity = never fails.
  std::vector<double> fail_time(c, std::numeric_limits<double>::infinity());
  std::vector<bool> failed(c, false);
  if (core_faults != nullptr && !core_faults->empty()) {
    double ideal = 0.0;
    for (const auto& t : tasks) {
      ideal += t.cycles / fmax + t.mem_seconds * mem_scale;
    }
    ideal /= static_cast<double>(c);
    for (const auto& f : *core_faults) {
      if (f.core < c) {
        fail_time[f.core] =
            std::min(fail_time[f.core], f.at_fraction * ideal);
      }
    }
  }

  std::vector<double> free_time(c, 0.0);
  std::vector<bool> active(c, true);
  for (std::size_t i = 0; i < c; ++i) {
    // A cap of zero (small N/C at low rel_freq) means no tasks at all; the
    // post-increment cap check below only fires after the first task.
    if (cap[i] == 0) active[i] = false;
  }
  std::size_t remaining = n;
  // Tasks abandoned by failing cores: re-executable by survivors, but not
  // before the failure instant (causality).
  struct Retry {
    std::size_t task;
    double ready;
  };
  std::deque<Retry> retries;

  while (remaining > 0) {
    // Earliest-free active core (ties -> lowest id).
    std::size_t who = c;
    for (std::size_t i = 0; i < c; ++i) {
      if (!active[i]) continue;
      if (who == c || free_time[i] < free_time[who]) who = i;
    }
    if (who == c) {
      // Every core is capped out or failed while tasks remain (possible
      // only with a degenerate configuration); lift the caps and restart
      // the failed cores so work always finishes.
      for (std::size_t i = 0; i < c; ++i) {
        active[i] = true;
        cap[i] = std::numeric_limits<std::size_t>::max();
        fail_time[i] = std::numeric_limits<double>::infinity();
      }
      continue;
    }
    if (fail_time[who] <= free_time[who]) {
      // This core's failure instant has passed: it dies instead of picking.
      // Its queue stays in place — survivors steal from it as usual.
      active[who] = false;
      if (!failed[who]) {
        failed[who] = true;
        ++result.cores_failed;
        if (tele.deaths != nullptr) {
          tele.deaths->add();
          tele.tracer->instant(tele.core_track[who], "core death",
                               tele.t0 + fail_time[who] * 1e6);
        }
      }
      continue;
    }

    std::size_t task = n;
    double ready = 0.0;
    bool stolen = false;
    bool reexec = false;
    if (!queues[who].empty()) {
      task = queues[who].front();
      queues[who].pop_front();
    } else if (!retries.empty()) {
      task = retries.front().task;
      ready = retries.front().ready;
      retries.pop_front();
      ++result.tasks_reexecuted;
      reexec = true;
      if (tele.reexecs != nullptr) tele.reexecs->add();
    } else {
      // Steal from the victim with the most remaining tasks.
      std::size_t victim = c;
      for (std::size_t v = 0; v < c; ++v) {
        if (v == who || queues[v].empty()) continue;
        if (victim == c || queues[v].size() > queues[victim].size()) {
          victim = v;
        }
      }
      if (victim == c) {
        active[who] = false;  // nothing to do anywhere
        continue;
      }
      task = queues[victim].back();
      queues[victim].pop_back();
      ++result.steals;
      stolen = true;
      if (tele.steals != nullptr) tele.steals->add();
    }

    const double duration = tasks[task].cycles / cores[who].freq_hz +
                            tasks[task].mem_seconds * mem_scale;
    const double start = std::max(free_time[who], ready);
    const double end = start + duration;
    if (end > fail_time[who]) {
      // The core dies mid-task: partial work up to the failure instant is
      // wasted, the task goes back for a survivor to re-execute.
      const double wasted = std::max(0.0, fail_time[who] - start);
      result.busy_seconds[who] += wasted;
      result.wasted_seconds += wasted;
      free_time[who] = fail_time[who];
      result.makespan_s = std::max(result.makespan_s, fail_time[who]);
      active[who] = false;
      if (!failed[who]) {
        failed[who] = true;
        ++result.cores_failed;
        if (tele.deaths != nullptr) {
          tele.deaths->add();
          tele.tracer->instant(tele.core_track[who], "core death",
                               tele.t0 + fail_time[who] * 1e6,
                               {{"task", static_cast<double>(task)}});
        }
      }
      retries.push_back(Retry{task, std::max(ready, fail_time[who])});
      continue;
    }
    result.busy_seconds[who] += duration;
    free_time[who] = end;
    result.makespan_s = std::max(result.makespan_s, free_time[who]);
    --remaining;
    if (tele.tracer != nullptr && tele.span_budget > 0) {
      --tele.span_budget;
      tele.tracer->complete(tele.core_track[who], tele.phase,
                            tele.t0 + start * 1e6, duration * 1e6,
                            {{"task", static_cast<double>(task)},
                             {"stolen", stolen ? 1.0 : 0.0},
                             {"reexec", reexec ? 1.0 : 0.0}});
    }
    if (++result.tasks_executed[who] >= cap[who]) active[who] = false;
  }
  return result;
}

}  // namespace vfimr::sysmodel
