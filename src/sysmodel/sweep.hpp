#pragma once
// Parallel experiment runner for the three-system comparison sweeps that
// back every figure and table: one compare_systems() call per application
// profile, fanned out over a bounded thread pool.
//
// FullSystemSim::run is const and side-effect-free (each run owns its
// platform, network and task-simulator state; the only shared static is the
// VfTable::standard() singleton, whose initialization is thread-safe), so
// the sweep is safe to parallelize at profile granularity.  Results are
// returned in profile order regardless of scheduling, and every run's
// randomness is seeded from its own PlatformParams (per-run seed
// isolation), so the output is bit-identical for any thread count.

#include <cstddef>
#include <vector>

#include "sysmodel/system_sim.hpp"
#include "workload/profile.hpp"

namespace vfimr::sysmodel {

/// Runs compare_systems(profiles[i], sim, base_params) for every profile,
/// using up to `threads` worker threads (0 = default_parallelism()).
/// Result i corresponds to profiles[i].
std::vector<SystemComparison> sweep_comparisons(
    const std::vector<workload::AppProfile>& profiles,
    const FullSystemSim& sim, const PlatformParams& base_params = {},
    std::size_t threads = 0);

}  // namespace vfimr::sysmodel
