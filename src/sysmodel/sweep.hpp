#pragma once
// Parallel experiment runners for the comparison sweeps that back every
// figure and table — and, since the multi-fidelity ladder (DESIGN.md §12),
// the analytical-first design-space drivers.
//
// FullSystemSim::run is const and side-effect-free (each run owns its
// platform, network and task-simulator state; the only shared static is the
// VfTable::standard() singleton, whose initialization is thread-safe), so
// the sweeps are safe to parallelize at profile / design-point granularity.
// Results are returned in input order regardless of scheduling, and every
// run's randomness is seeded from its own PlatformParams (per-run seed
// isolation), so the output is bit-identical for any thread count.

#include <cstddef>
#include <string>
#include <vector>

#include "sysmodel/system_sim.hpp"
#include "workload/profile.hpp"

namespace vfimr::store {
class EvalStore;
}

namespace vfimr::sysmodel {

/// Runs compare_systems(profiles[i], sim, base_params) for every profile,
/// using up to `threads` worker threads (0 = default_parallelism()).
/// Result i corresponds to profiles[i].
std::vector<SystemComparison> sweep_comparisons(
    const std::vector<workload::AppProfile>& profiles,
    const FullSystemSim& sim, const PlatformParams& base_params = {},
    std::size_t threads = 0);

/// One slot of a batched FullSystemSim evaluation: a (profile, platform,
/// baselines) triple.  The profile is borrowed — it must outlive the
/// run_batch call.
struct BatchRequest {
  const workload::AppProfile* profile = nullptr;
  PlatformParams params;
  PhaseBaselines baselines;
};

/// Batched evaluation entry point for callers that need many independent
/// full-system runs at once (the cluster serving tier's service matrix,
/// heterogeneous-fleet warmup): results[i] = sim.run(*requests[i].profile,
/// requests[i].params, requests[i].baselines), computed under parallel_for
/// with one pre-sized slot per request, so the output is bit-identical for
/// any `threads` (0 = default_parallelism()).  Attach a shared
/// NetworkEvaluator / PlatformCache through the request params to dedupe
/// repeated evaluations across slots.
std::vector<SystemReport> run_batch(const FullSystemSim& sim,
                                    const std::vector<BatchRequest>& requests,
                                    std::size_t threads = 0);

/// Content-addressed identity of one comparison sweep point: the raw bytes
/// of every input that steers compare_systems(profile, sim, base_params) —
/// the profile's full workload content (utilization, traffic, phase model,
/// per-phase matrices), every PlatformParams value field (pointers and the
/// telemetry label excluded: memo services and tracing are proven
/// bit-identical to their absence), and the simulator's power-model
/// parameters and V/F ladder.  Equal keys denote the same comparison, so a
/// stored result under this key is bit-identical to re-running the point.
std::string comparison_point_key(const workload::AppProfile& profile,
                                 const FullSystemSim& sim,
                                 const PlatformParams& base_params);

/// Configuration of an incremental (store-backed) comparison sweep.
struct IncrementalOptions {
  /// Required.  Point results are looked up / written under
  /// KeyDomain::kSweepPoint; the manifest under kSweepManifest.
  store::EvalStore* store = nullptr;
  /// Manifest name for this sweep (e.g. "fig8").  The driver records the
  /// point-key hash list (input order) under this name after every run, so
  /// tools and later runs can see which points changed.  Empty skips the
  /// manifest.
  std::string sweep_name;
  /// Shard ownership for multi-process population: this process evaluates
  /// only points with index % shard_count == shard_index.  Results other
  /// shards have already committed are still merged in; points owned by an
  /// absent shard come back invalid (valid[i] == 0).
  std::size_t shard_index = 0;
  std::size_t shard_count = 1;
};

/// Outcome of an incremental sweep.  comparisons[i] corresponds to
/// profiles[i] and is populated iff valid[i] != 0 — on a single-shard run
/// every point is valid; on a sharded run points owned by other shards are
/// valid only once those shards have flushed their results into the store.
struct IncrementalSweepResult {
  std::vector<SystemComparison> comparisons;  ///< input order
  std::vector<std::uint8_t> valid;   ///< comparisons[i] is populated
  std::vector<std::uint8_t> reused;  ///< loaded from the store, not computed
  std::size_t reused_points = 0;     ///< served from the store
  std::size_t evaluated_points = 0;  ///< computed (and written back)
  std::size_t skipped_points = 0;    ///< owned by another shard, not stored
  /// Manifest bookkeeping: whether a prior manifest existed under
  /// sweep_name, and how many of this run's point keys it already listed
  /// (points whose inputs did not change since that run).
  bool had_prior_manifest = false;
  std::size_t manifest_prior_matches = 0;
};

/// Incremental twin of sweep_comparisons: each point is keyed by
/// comparison_point_key and resolved store-first.  Only points whose inputs
/// changed (key not in the store) are re-evaluated — in parallel, then
/// written back and flushed — and prior results are merged in input order.
/// With shard_count > 1 the point list is partitioned round-robin so N
/// worker processes can populate one store concurrently (segment commits
/// are process-safe; see store/eval_store.hpp).
IncrementalSweepResult incremental_sweep_comparisons(
    const std::vector<workload::AppProfile>& profiles,
    const FullSystemSim& sim, const PlatformParams& base_params,
    const IncrementalOptions& options, std::size_t threads = 0);

/// The Auto-mode three-system comparison: explore every system in the
/// analytical band, pick the EDP frontier, then confirm it (and the NVFI
/// baseline it is judged against) cycle-accurately.  Each confirmation is
/// recorded as a promotion on base_params.net_eval when one is attached.
struct AutoComparison {
  /// Analytical-band exploration of all three systems (fidelity kAuto).
  SystemComparison explored;
  /// argmin of the explored EDPs — the system the Auto policy promotes.
  SystemKind frontier = SystemKind::kNvfiMesh;
  /// Cycle-accurate re-run of the frontier system (== confirmed_baseline
  /// when the frontier is the NVFI mesh itself).
  SystemReport confirmed;
  /// Cycle-accurate NVFI-mesh run that supplied the confirmation baselines.
  SystemReport confirmed_baseline;
};

AutoComparison compare_systems_auto(const workload::AppProfile& profile,
                                    const FullSystemSim& sim,
                                    const PlatformParams& base_params = {});

/// One candidate platform configuration in a design-space sweep.  The
/// params carry everything, including the fidelity band the point is
/// explored in (kAuto points are eligible for cycle-accurate promotion).
struct SweepPoint {
  std::string label;
  PlatformParams params;
};

struct DesignPointResult {
  std::string label;
  SystemReport explored;
  bool promoted = false;
  SystemReport confirmed;  ///< valid only when promoted
};

struct DesignSpaceResult {
  std::vector<DesignPointResult> points;  ///< in input order
  std::size_t argmin_explored = 0;   ///< lowest explored EDP
  std::size_t argmin_confirmed = 0;  ///< lowest confirmed EDP among promoted
                                     ///< points; == argmin_explored when
                                     ///< nothing was promoted
  std::size_t promotions = 0;
};

/// Explore every point in its own fidelity band in parallel, then promote
/// the `promote_top` kAuto points with the lowest explored EDP to
/// cycle-accurate confirmation runs.  Baselines (the NVFI-mesh reference
/// latencies) are computed once per band from points[0]'s params.
/// Promotions are recorded on the points' shared net_eval (when attached).
/// Deterministic for any `threads` (0 = default_parallelism()).
DesignSpaceResult sweep_design_space(const workload::AppProfile& profile,
                                     const FullSystemSim& sim,
                                     const std::vector<SweepPoint>& points,
                                     std::size_t promote_top = 1,
                                     std::size_t threads = 0);

}  // namespace vfimr::sysmodel
