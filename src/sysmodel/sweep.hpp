#pragma once
// Parallel experiment runners for the comparison sweeps that back every
// figure and table — and, since the multi-fidelity ladder (DESIGN.md §12),
// the analytical-first design-space drivers.
//
// FullSystemSim::run is const and side-effect-free (each run owns its
// platform, network and task-simulator state; the only shared static is the
// VfTable::standard() singleton, whose initialization is thread-safe), so
// the sweeps are safe to parallelize at profile / design-point granularity.
// Results are returned in input order regardless of scheduling, and every
// run's randomness is seeded from its own PlatformParams (per-run seed
// isolation), so the output is bit-identical for any thread count.

#include <cstddef>
#include <string>
#include <vector>

#include "sysmodel/system_sim.hpp"
#include "workload/profile.hpp"

namespace vfimr::sysmodel {

/// Runs compare_systems(profiles[i], sim, base_params) for every profile,
/// using up to `threads` worker threads (0 = default_parallelism()).
/// Result i corresponds to profiles[i].
std::vector<SystemComparison> sweep_comparisons(
    const std::vector<workload::AppProfile>& profiles,
    const FullSystemSim& sim, const PlatformParams& base_params = {},
    std::size_t threads = 0);

/// One slot of a batched FullSystemSim evaluation: a (profile, platform,
/// baselines) triple.  The profile is borrowed — it must outlive the
/// run_batch call.
struct BatchRequest {
  const workload::AppProfile* profile = nullptr;
  PlatformParams params;
  PhaseBaselines baselines;
};

/// Batched evaluation entry point for callers that need many independent
/// full-system runs at once (the cluster serving tier's service matrix,
/// heterogeneous-fleet warmup): results[i] = sim.run(*requests[i].profile,
/// requests[i].params, requests[i].baselines), computed under parallel_for
/// with one pre-sized slot per request, so the output is bit-identical for
/// any `threads` (0 = default_parallelism()).  Attach a shared
/// NetworkEvaluator / PlatformCache through the request params to dedupe
/// repeated evaluations across slots.
std::vector<SystemReport> run_batch(const FullSystemSim& sim,
                                    const std::vector<BatchRequest>& requests,
                                    std::size_t threads = 0);

/// The Auto-mode three-system comparison: explore every system in the
/// analytical band, pick the EDP frontier, then confirm it (and the NVFI
/// baseline it is judged against) cycle-accurately.  Each confirmation is
/// recorded as a promotion on base_params.net_eval when one is attached.
struct AutoComparison {
  /// Analytical-band exploration of all three systems (fidelity kAuto).
  SystemComparison explored;
  /// argmin of the explored EDPs — the system the Auto policy promotes.
  SystemKind frontier = SystemKind::kNvfiMesh;
  /// Cycle-accurate re-run of the frontier system (== confirmed_baseline
  /// when the frontier is the NVFI mesh itself).
  SystemReport confirmed;
  /// Cycle-accurate NVFI-mesh run that supplied the confirmation baselines.
  SystemReport confirmed_baseline;
};

AutoComparison compare_systems_auto(const workload::AppProfile& profile,
                                    const FullSystemSim& sim,
                                    const PlatformParams& base_params = {});

/// One candidate platform configuration in a design-space sweep.  The
/// params carry everything, including the fidelity band the point is
/// explored in (kAuto points are eligible for cycle-accurate promotion).
struct SweepPoint {
  std::string label;
  PlatformParams params;
};

struct DesignPointResult {
  std::string label;
  SystemReport explored;
  bool promoted = false;
  SystemReport confirmed;  ///< valid only when promoted
};

struct DesignSpaceResult {
  std::vector<DesignPointResult> points;  ///< in input order
  std::size_t argmin_explored = 0;   ///< lowest explored EDP
  std::size_t argmin_confirmed = 0;  ///< lowest confirmed EDP among promoted
                                     ///< points; == argmin_explored when
                                     ///< nothing was promoted
  std::size_t promotions = 0;
};

/// Explore every point in its own fidelity band in parallel, then promote
/// the `promote_top` kAuto points with the lowest explored EDP to
/// cycle-accurate confirmation runs.  Baselines (the NVFI-mesh reference
/// latencies) are computed once per band from points[0]'s params.
/// Promotions are recorded on the points' shared net_eval (when attached).
/// Deterministic for any `threads` (0 = default_parallelism()).
DesignSpaceResult sweep_design_space(const workload::AppProfile& profile,
                                     const FullSystemSim& sim,
                                     const std::vector<SweepPoint>& points,
                                     std::size_t promote_top = 1,
                                     std::size_t threads = 0);

}  // namespace vfimr::sysmodel
