#pragma once
// NetworkEvaluator: NoC evaluation as a memoizable, multi-fidelity service
// (DESIGN.md §11 and §12).
//
// The phase-resolved pipeline evaluates up to four traffic matrices per
// (application, system) pair, and sweeps evaluate many such pairs in
// parallel.  Identical evaluations recur — LibInit and Merge share a
// traffic matrix by construction, and fault sweeps revisit the same clean
// baseline — so the evaluator memoizes results behind a content-addressed
// key: every input that can change the simulation outcome (topology,
// wireless layout, traffic matrix, sim window, fault spec/schedule, power
// constants, seeds, and the fidelity band) is serialized byte-for-byte into
// the key.  Two calls with equal keys are the *same* evaluation, and the
// cached result is bit-identical to a fresh run by definition.
//
// Fidelity bands: PlatformParams::fidelity selects between the
// cycle-accurate wormhole simulator and the analytical hop-by-hop model
// (noc/analytical.hpp).  kAuto evaluates in the analytical band — sweep
// drivers explore with it and then re-confirm ("promote") the surviving
// frontier cycle-accurately.  Because the band is part of the cache key,
// analytical and cycle-accurate results can never alias to one entry.
//
// Thread safety: the cache composes with common/parallel_for.  Lookups take
// a registry mutex only to find-or-create the entry; the (expensive)
// simulation runs under the entry's own mutex, so concurrent misses on
// different keys simulate in parallel while a second thread asking for a
// key being computed blocks until the result is ready (compute-once).
//
// Telemetry: hit/miss totals are exposed via stats() and, when the request
// carries a sink, mirrored into `net_eval.cache_hits` /
// `net_eval.cache_misses` plus the per-band
// `net_eval.{analytical,cycle}.cache_{hits,misses}` counters; frontier
// promotions recorded via note_promotion() appear as
// `net_eval.promotions`.  Cache hits do not re-emit the NoC trace events of
// the original run.
//
// Disk tier: attach_store() adds a persistent tier between the in-memory
// memo and the simulator.  Lookups then go memory -> disk -> compute: a
// memory miss probes the store under the same content-addressed key
// (domain-prefixed, see store/eval_store.hpp), and only a disk miss runs
// the simulation — whose result is written back so later processes (other
// sweep shards, warm re-runs) load it instead of recomputing.  A decoded
// disk hit is bit-identical to a fresh run because the key already captures
// every input and the codec round-trips every output field exactly; stores
// written by a different format or codec version simply miss (stale data is
// recomputed, never trusted).  Disk traffic shows up in stats() as
// `disk_hits` / `disk_misses` and in telemetry as `net_eval.disk_hits`,
// `net_eval.disk_misses`, and `store.bytes` (bytes moved to or from disk).
// `misses` continues to count *simulations*, so `misses == 0` on a warm
// re-run is the "no evaluator recomputed anything" gate.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/matrix.hpp"
#include "power/noc_power.hpp"
#include "sysmodel/platform.hpp"

namespace vfimr::store {
class EvalStore;
}

namespace vfimr::sysmodel {

/// Drive `platform`'s NoC cycle-accurately with an explicit node x node
/// traffic matrix and measure latency and per-flit energy.  This is the
/// uncached cycle-accurate core; the phase-resolved pipeline calls it once
/// per phase matrix.  Ignores `params.fidelity`.
NetworkEval evaluate_network_traffic(const BuiltPlatform& platform,
                                     const Matrix& node_traffic,
                                     std::uint32_t packet_flits,
                                     const PlatformParams& params,
                                     const power::NocPowerModel& noc_power,
                                     const std::string& label = "noc");

/// Analytical-band twin of evaluate_network_traffic: same inputs, same
/// fault expansion and VFI clustering, same post-processing (pipeline
/// correction, energy per flit) — but the Metrics come from the hop-by-hop
/// M/D/1 model instead of the wormhole simulator.  Ignores
/// `params.fidelity`.
NetworkEval evaluate_network_analytical(const BuiltPlatform& platform,
                                        const Matrix& node_traffic,
                                        std::uint32_t packet_flits,
                                        const PlatformParams& params,
                                        const power::NocPowerModel& noc_power,
                                        const std::string& label = "noc");

/// Dispatch on `params.fidelity`: kCycleAccurate runs the simulator,
/// kAnalytical / kAuto run the analytical model.
NetworkEval evaluate_network_banded(const BuiltPlatform& platform,
                                    const Matrix& node_traffic,
                                    std::uint32_t packet_flits,
                                    const PlatformParams& params,
                                    const power::NocPowerModel& noc_power,
                                    const std::string& label = "noc");

class NetworkEvaluator {
 public:
  struct Stats {
    /// Totals across both bands (back-compat with pre-ladder callers).
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;
    /// Per-band split: analytical covers kAnalytical and kAuto requests.
    std::uint64_t analytical_hits = 0;
    std::uint64_t analytical_misses = 0;
    std::uint64_t cycle_hits = 0;
    std::uint64_t cycle_misses = 0;
    /// Frontier promotions recorded by sweep drivers (note_promotion).
    std::uint64_t promotions = 0;
    /// Disk tier (attach_store): memory misses resolved from / written to
    /// the persistent store.  Every disk miss is also a simulation, so
    /// `misses` keeps meaning "evaluations actually computed".
    std::uint64_t disk_hits = 0;
    std::uint64_t disk_misses = 0;

    std::uint64_t total() const { return hits + disk_hits + misses; }
    double hit_rate() const {
      return total() > 0 ? static_cast<double>(hits + disk_hits) /
                               static_cast<double>(total())
                         : 0.0;
    }
  };

  /// Memoized evaluate_network_banded.  The first call for a key runs the
  /// evaluation in the band `params.fidelity` selects; later calls (from
  /// any thread) return the stored result.  The band is part of the key,
  /// so analytical and cycle-accurate evaluations of otherwise identical
  /// inputs occupy distinct entries.
  NetworkEval evaluate(const BuiltPlatform& platform,
                       const Matrix& node_traffic, std::uint32_t packet_flits,
                       const PlatformParams& params,
                       const power::NocPowerModel& noc_power,
                       const std::string& label = "noc");

  /// Record that a sweep driver promoted an analytically-explored point to
  /// a cycle-accurate confirmation run (mirrored into the
  /// `net_eval.promotions` telemetry counter when `sink` is non-null).
  void note_promotion(telemetry::TelemetrySink* sink = nullptr);

  /// Attach (or detach, with nullptr) the persistent disk tier.  The store
  /// is probed on memory misses and written on computes; it must outlive
  /// every evaluate() call.  Not thread-safe against concurrent evaluate()
  /// — attach before handing the evaluator to workers.
  void attach_store(store::EvalStore* store) { store_ = store; }
  store::EvalStore* store() const { return store_; }

  Stats stats() const {
    Stats s;
    s.analytical_hits = analytical_hits_.load(std::memory_order_relaxed);
    s.analytical_misses = analytical_misses_.load(std::memory_order_relaxed);
    s.cycle_hits = cycle_hits_.load(std::memory_order_relaxed);
    s.cycle_misses = cycle_misses_.load(std::memory_order_relaxed);
    s.hits = s.analytical_hits + s.cycle_hits;
    s.misses = s.analytical_misses + s.cycle_misses;
    s.promotions = promotions_.load(std::memory_order_relaxed);
    s.disk_hits = disk_hits_.load(std::memory_order_relaxed);
    s.disk_misses = disk_misses_.load(std::memory_order_relaxed);
    return s;
  }

  /// Number of distinct evaluations stored.
  std::size_t size() const;

  /// Drop all cached results (counters keep accumulating).
  void clear();

 private:
  struct Entry {
    std::mutex mutex;
    bool ready = false;
    NetworkEval value;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> cache_;
  std::atomic<std::uint64_t> analytical_hits_{0};
  std::atomic<std::uint64_t> analytical_misses_{0};
  std::atomic<std::uint64_t> cycle_hits_{0};
  std::atomic<std::uint64_t> cycle_misses_{0};
  std::atomic<std::uint64_t> promotions_{0};
  std::atomic<std::uint64_t> disk_hits_{0};
  std::atomic<std::uint64_t> disk_misses_{0};
  store::EvalStore* store_ = nullptr;
};

}  // namespace vfimr::sysmodel
