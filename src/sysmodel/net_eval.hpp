#pragma once
// NetworkEvaluator: the cycle-accurate NoC evaluation as a memoizable
// service (DESIGN.md §11).
//
// The phase-resolved pipeline evaluates up to four traffic matrices per
// (application, system) pair, and sweeps evaluate many such pairs in
// parallel.  Identical evaluations recur — LibInit and Merge share a
// traffic matrix by construction, and fault sweeps revisit the same clean
// baseline — so the evaluator memoizes results behind a content-addressed
// key: every input that can change the simulation outcome (topology,
// wireless layout, traffic matrix, sim window, fault spec/schedule, power
// constants, seeds) is serialized byte-for-byte into the key.  Two calls
// with equal keys are the *same* simulation, and the cached result is
// bit-identical to a fresh run by definition.
//
// Thread safety: the cache composes with common/parallel_for.  Lookups take
// a registry mutex only to find-or-create the entry; the (expensive)
// simulation runs under the entry's own mutex, so concurrent misses on
// different keys simulate in parallel while a second thread asking for a
// key being computed blocks until the result is ready (compute-once).
//
// Telemetry: hit/miss totals are exposed via stats() and, when the request
// carries a sink, mirrored into the `net_eval.cache_hits` /
// `net_eval.cache_misses` counters.  Cache hits do not re-emit the NoC
// trace events of the original run.

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <unordered_map>

#include "common/matrix.hpp"
#include "power/noc_power.hpp"
#include "sysmodel/platform.hpp"

namespace vfimr::sysmodel {

/// Drive `platform`'s NoC with an explicit node x node traffic matrix and
/// measure latency and per-flit energy.  This is the uncached core of
/// `evaluate_network` (which passes the platform's whole-run traffic); the
/// phase-resolved pipeline calls it once per phase matrix.
NetworkEval evaluate_network_traffic(const BuiltPlatform& platform,
                                     const Matrix& node_traffic,
                                     std::uint32_t packet_flits,
                                     const PlatformParams& params,
                                     const power::NocPowerModel& noc_power,
                                     const std::string& label = "noc");

class NetworkEvaluator {
 public:
  struct Stats {
    std::uint64_t hits = 0;
    std::uint64_t misses = 0;

    std::uint64_t total() const { return hits + misses; }
    double hit_rate() const {
      return total() > 0 ? static_cast<double>(hits) /
                               static_cast<double>(total())
                         : 0.0;
    }
  };

  /// Memoized evaluate_network_traffic.  The first call for a key runs the
  /// simulation; later calls (from any thread) return the stored result.
  NetworkEval evaluate(const BuiltPlatform& platform,
                       const Matrix& node_traffic, std::uint32_t packet_flits,
                       const PlatformParams& params,
                       const power::NocPowerModel& noc_power,
                       const std::string& label = "noc");

  Stats stats() const {
    return Stats{hits_.load(std::memory_order_relaxed),
                 misses_.load(std::memory_order_relaxed)};
  }

  /// Number of distinct evaluations stored.
  std::size_t size() const;

  /// Drop all cached results (counters keep accumulating).
  void clear();

 private:
  struct Entry {
    std::mutex mutex;
    bool ready = false;
    NetworkEval value;
  };

  mutable std::mutex mutex_;
  std::unordered_map<std::string, std::shared_ptr<Entry>> cache_;
  std::atomic<std::uint64_t> hits_{0};
  std::atomic<std::uint64_t> misses_{0};
};

}  // namespace vfimr::sysmodel
