#!/usr/bin/env python3
"""CI gate for the cluster serving tier (DESIGN.md §13).

Usage: check_cluster.py BENCH_cluster.json [MIN_JOBS_PER_SEC]

Consumes the `bench_cluster.*` metrics written by bench_cluster_serving and
enforces the serving tier's contract:

  * schema — every gated metric is present (a silently skipped section
    would otherwise pass vacuously).
  * determinism_identical == 1 — the headline cell replayed on a
    1-worker-evaluated and an 8-worker-evaluated service matrix produced
    bit-identical SLA percentiles, counters and completion-order digest.
    This is the ISSUE acceptance gate: worker threads only parallelize the
    batched matrix evaluation, never the serving event loop.
  * quantiles_monotone == 1 — p50 <= p99 <= p999 in every sweep cell with
    completions (the P² estimators are independent; a crossing means a
    streaming-stats regression).
  * admitted_jobs > 0 — the sweep actually served work.
  * jobs_per_sec >= MIN_JOBS_PER_SEC (default 10000) — serving throughput
    of the headline cell, wall-clock over completed jobs with a warm
    service matrix.  The floor is deliberately ~2 orders below a healthy
    run (millions/s): it catches an accidental simulator call inside the
    per-arrival path, not machine speed.

Also consumes the `bench_cluster.availability.*` section written by
bench_cluster_availability (DESIGN.md §14) into the same file:

  * availability.cells > 0 — the fault sweep ran.
  * availability.zero_fault_identity == 1 — a retry-enabled config with an
    empty fault plan replayed the fault-free serving loop bit-for-bit
    (digest, counters, latency/energy sums).
  * availability.goodput_monotone == 1 — within each (policy, fleet)
    column, goodput never rises with the fault rate (fault plans are
    superset-thinned, so this is structural).
  * availability.availability_monotone == 1 — down-time at the shared plan
    horizon grows exactly with the fault rate.
"""

import json
import sys

PREFIX = "bench_cluster."


def main(argv):
    if len(argv) < 2:
        print(
            "usage: check_cluster.py BENCH_cluster.json [MIN_JOBS_PER_SEC]",
            file=sys.stderr,
        )
        sys.exit(1)
    min_jobs_per_sec = float(argv[2]) if len(argv) > 2 else 10_000.0

    with open(argv[1], encoding="utf-8") as f:
        doc = json.load(f)

    def metric(name):
        key = PREFIX + name
        if key not in doc:
            print(f"check_cluster: FAIL: {argv[1]} has no {key}",
                  file=sys.stderr)
            sys.exit(1)
        return float(doc[key])

    cells = metric("config.cells")
    identical = metric("check.determinism_identical")
    monotone = metric("check.quantiles_monotone")
    admitted = metric("check.admitted_jobs")
    jobs = metric("throughput.jobs")
    jobs_per_sec = metric("throughput.jobs_per_sec")
    spot_err = metric("spotcheck.exec_rel_err")
    avail_cells = metric("availability.cells")
    zero_fault = metric("availability.zero_fault_identity")
    goodput_mono = metric("availability.goodput_monotone")
    avail_mono = metric("availability.availability_monotone")

    print(
        f"check_cluster: {cells:.0f} sweep cells, {admitted:.0f} admitted, "
        f"headline {jobs:.0f} jobs at {jobs_per_sec:,.0f} jobs/s "
        f"(floor {min_jobs_per_sec:,.0f}), 1v8-worker identical="
        f"{identical:.0f}, monotone={monotone:.0f}, "
        f"cycle spot check {spot_err:.2%} off"
    )
    print(
        f"check_cluster: availability sweep {avail_cells:.0f} cells, "
        f"zero-fault identity={zero_fault:.0f}, goodput monotone="
        f"{goodput_mono:.0f}, availability monotone={avail_mono:.0f}"
    )

    failures = []
    if identical != 1.0:
        failures.append("1-vs-8-worker SLA stats are not bit-identical")
    if monotone != 1.0:
        failures.append("p50 <= p99 <= p999 violated in some sweep cell")
    if admitted <= 0:
        failures.append("sweep admitted no jobs")
    if jobs_per_sec < min_jobs_per_sec:
        failures.append(
            f"serving throughput {jobs_per_sec:,.0f} jobs/s below floor "
            f"{min_jobs_per_sec:,.0f}"
        )
    if avail_cells <= 0:
        failures.append("availability sweep ran no cells")
    if zero_fault != 1.0:
        failures.append(
            "zero-fault run is not bit-identical to the fault-free loop"
        )
    if goodput_mono != 1.0:
        failures.append("goodput rose with the fault rate in some column")
    if avail_mono != 1.0:
        failures.append(
            "down-time is not monotone in the fault rate (superset broken)"
        )

    if failures:
        for f_msg in failures:
            print(f"check_cluster: FAIL: {f_msg}", file=sys.stderr)
        sys.exit(1)
    print("check_cluster: OK")


if __name__ == "__main__":
    main(sys.argv)
