#!/usr/bin/env python3
"""CI gate for the persistent evaluation store (DESIGN.md §16).

Usage: check_store.py COLD.json WARM.json COLD.csv WARM.csv [MIN_SPEEDUP]

Consumes the `fig8.*` metrics written by two consecutive
`bench_fig8_full_system_edp --store-out` runs against one VFIMR_CACHE_DIR —
a cold pass that populates the store and a warm pass that must be served
entirely from it — plus the result CSV each pass wrote, and enforces the
tentpole contract:

  * schema — every gated metric is present in both files (a bench that
    silently skipped the incremental path would otherwise pass vacuously).
  * cold pass did the work — evaluated_points > 0, store.bytes_written > 0:
    the store really was populated by this job, not a stale artifact.
  * warm pass is disk-served — store hits > 0 and incremental.reused equals
    the cold pass's point count; evaluated_points == 0.
  * ZERO simulations on the warm pass — fig8.net_eval.misses == 0 (misses
    count simulations actually run; disk hits and sweep-point reuse do not
    increment it) and net_eval.disk_misses == 0.
  * nothing corrupt or stale was scanned — a nonzero count on a store this
    job just wrote means the record framing regressed.
  * byte-identical output — the warm CSV must equal the cold CSV exactly.
    This is the acceptance criterion: a disk hit is bit-identical to a
    fresh run, so the rendered table cannot differ in a single byte.
  * warm wall time >= MIN_SPEEDUP x faster than cold (default 5).  The
    small preset's cold pass simulates ~1s vs a few ms warm, so the floor
    is generous; it catches a warm pass that quietly re-simulates.
"""

import json
import sys


def fail(msg):
    print(f"check_store: FAIL: {msg}")
    sys.exit(1)


def load_metrics(path):
    with open(path) as f:
        doc = json.load(f)
    metrics = doc.get("metrics", doc)
    if not isinstance(metrics, dict) or not metrics:
        fail(f"{path}: no metrics object")
    return metrics


def need(metrics, path, key):
    if key not in metrics:
        fail(f"{path}: missing metric '{key}'")
    return metrics[key]


GATED = [
    "fig8.wall_s",
    "fig8.valid_points",
    "fig8.incremental.reused",
    "fig8.incremental.evaluated",
    "fig8.incremental.skipped",
    "fig8.net_eval.misses",
    "fig8.net_eval.disk_misses",
    "fig8.store.hits",
    "fig8.store.bytes_written",
    "fig8.store.corrupt_records",
    "fig8.store.stale_records",
]


def main():
    if len(sys.argv) < 5:
        print(__doc__)
        sys.exit(2)
    cold_json, warm_json, cold_csv, warm_csv = sys.argv[1:5]
    min_speedup = float(sys.argv[5]) if len(sys.argv) > 5 else 5.0

    cold = load_metrics(cold_json)
    warm = load_metrics(warm_json)
    for key in GATED:
        need(cold, cold_json, key)
        need(warm, warm_json, key)

    # Cold pass populated the store.
    cold_evaluated = cold["fig8.incremental.evaluated"]
    if cold_evaluated <= 0:
        fail(f"cold pass evaluated {cold_evaluated} points (expected > 0)")
    if cold["fig8.store.bytes_written"] <= 0:
        fail("cold pass wrote no store bytes")

    # Warm pass was served from disk, point for point.
    points = cold["fig8.valid_points"]
    if warm["fig8.incremental.reused"] != points:
        fail(
            f"warm pass reused {warm['fig8.incremental.reused']} of "
            f"{points} points"
        )
    if warm["fig8.incremental.evaluated"] != 0:
        fail(
            f"warm pass re-evaluated "
            f"{warm['fig8.incremental.evaluated']} points (expected 0)"
        )
    if warm["fig8.store.hits"] <= 0:
        fail("warm pass recorded no store hits")

    # The hard gate: zero simulations ran on the warm pass.
    for key in ("fig8.net_eval.misses", "fig8.net_eval.disk_misses"):
        if warm[key] != 0:
            fail(f"warm pass {key} = {warm[key]} (expected 0: no simulation "
                 "may run when every point is stored)")

    # The store this job just wrote must scan back clean.
    for metrics, path in ((cold, cold_json), (warm, warm_json)):
        for key in ("fig8.store.corrupt_records", "fig8.store.stale_records"):
            if metrics[key] != 0:
                fail(f"{path}: {key} = {metrics[key]} on a freshly "
                     "written store")

    # Byte-identical rendered output.
    with open(cold_csv, "rb") as f:
        cold_bytes = f.read()
    with open(warm_csv, "rb") as f:
        warm_bytes = f.read()
    if cold_bytes != warm_bytes:
        fail(f"{warm_csv} differs from {cold_csv}: a disk hit must be "
             "bit-identical to a fresh run")
    if not cold_bytes:
        fail(f"{cold_csv} is empty")

    cold_s = cold["fig8.wall_s"]
    warm_s = warm["fig8.wall_s"]
    speedup = cold_s / warm_s if warm_s > 0 else float("inf")
    if speedup < min_speedup:
        fail(
            f"warm pass speedup {speedup:.1f}x < {min_speedup:.1f}x "
            f"(cold {cold_s:.3f}s, warm {warm_s:.3f}s)"
        )

    print(
        f"check_store: OK: {points} points, cold {cold_s:.3f}s -> "
        f"warm {warm_s:.3f}s ({speedup:.1f}x), 0 warm simulations, "
        f"CSVs byte-identical ({len(cold_bytes)} bytes)"
    )


if __name__ == "__main__":
    main()
