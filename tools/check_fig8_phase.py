#!/usr/bin/env python3
"""CI guard for the phase-resolved network pipeline (DESIGN.md §11).

Usage: check_fig8_phase.py FIG8_PHASE.json [MAX_RATIO]

Reads the JSON written by `bench_fig8_full_system_edp --bench-out` and
enforces two invariants of the phase-resolved refactor:

* `fig8.runtime_ratio` — wall time of the phase-resolved sweep divided by
  the legacy single-evaluation sweep, measured back to back in the same
  process (so the ratio is portable across machines even though the wall
  times are not) — must stay at or below MAX_RATIO (default 2.0).  The
  pipeline's budget math: four per-phase evaluations at half the injection
  window, minus the LibInit == Merge cache hit, ≈ 1.5x one whole-run
  evaluation.
* `net_eval.cache_hits` must be positive: every phase-resolved run of an
  application with a merge phase replays the LibInit traffic, so a sweep
  with zero hits means the memo key broke (e.g. struct padding or an
  unstable serialization leaked into it) and the NetworkEvaluator is
  silently re-simulating everything.
"""

import json
import sys


def need(doc, key, path):
    if key not in doc:
        print(f"check_fig8_phase: FAIL: {path} has no {key}", file=sys.stderr)
        sys.exit(1)
    return float(doc[key])


def main(argv):
    if len(argv) < 2:
        print("usage: check_fig8_phase.py FIG8_PHASE.json [MAX_RATIO]",
              file=sys.stderr)
        sys.exit(1)
    path = argv[1]
    max_ratio = float(argv[2]) if len(argv) > 2 else 2.0

    with open(path, encoding="utf-8") as f:
        doc = json.load(f)

    ratio = need(doc, "fig8.runtime_ratio", path)
    hits = need(doc, "net_eval.cache_hits", path)
    misses = need(doc, "net_eval.cache_misses", path)
    phase_ms = need(doc, "fig8.phase_resolved_ms", path)
    legacy_ms = need(doc, "fig8.legacy_ms", path)

    print(
        f"check_fig8_phase: phase-resolved {phase_ms:.0f} ms vs legacy "
        f"{legacy_ms:.0f} ms -> ratio {ratio:.3f} (budget {max_ratio:.2f}); "
        f"cache {hits:.0f} hits / {misses:.0f} misses"
    )

    ok = True
    if ratio > max_ratio:
        print(
            f"check_fig8_phase: FAIL: runtime ratio {ratio:.3f} exceeds "
            f"{max_ratio:.2f} — the per-phase pipeline got too expensive",
            file=sys.stderr,
        )
        ok = False
    if hits <= 0:
        print(
            "check_fig8_phase: FAIL: NetworkEvaluator recorded zero cache "
            "hits — the LibInit == Merge identity no longer hits the memo, "
            "so the cache key is unstable",
            file=sys.stderr,
        )
        ok = False
    if not ok:
        sys.exit(1)
    print("check_fig8_phase: OK")


if __name__ == "__main__":
    main(sys.argv)
