#!/usr/bin/env python3
"""CI schema check for telemetry artifacts (DESIGN.md §10).

Usage: check_trace.py TRACE.json [METRICS.json|METRICS.csv]

Validates that the Chrome trace-event file emitted by --trace-out is
well-formed and Perfetto-loadable in shape:

  * top-level object with a "traceEvents" array;
  * every event carries name/ph/pid/tid, with ph in {M, X, i, C} plus the
    observability phases {b, e, s, f} (nestable async spans and flow
    arrows, DESIGN.md §15), which must also carry an id;
  * "X" (complete) events have numeric ts and dur >= 0;
  * process_name / thread_name metadata exists, and the expected track
    kinds from a full-system run are present (MapReduce core rows, VFI
    island rows, and the phases row; NoC packet rows appear only when
    sampling catches a packet, so they are reported but not required);
  * at least one map-phase span exists.

The optional second argument is the --metrics-out file; JSON must parse
to a flat name->number map, CSV must parse with a name column.
"""

import csv
import json
import sys

ALLOWED_PH = {"M", "X", "i", "C", "b", "e", "s", "f"}
ID_PH = {"b", "e", "s", "f"}


def fail(msg):
    print(f"check_trace: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def check_trace(path):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if not isinstance(doc, dict) or "traceEvents" not in doc:
        fail("top level must be an object with a traceEvents array")
    events = doc["traceEvents"]
    if not isinstance(events, list) or not events:
        fail("traceEvents must be a non-empty array")

    thread_names = []
    span_names = set()
    for i, ev in enumerate(events):
        for key in ("name", "ph", "pid", "tid"):
            if key not in ev:
                fail(f"event {i} missing required key {key!r}")
        ph = ev["ph"]
        if ph not in ALLOWED_PH:
            fail(f"event {i} has unexpected ph {ph!r}")
        if ph in ID_PH and not isinstance(ev.get("id"), (int, float)):
            fail(f"{ph!r} event {i} needs a numeric id")
        if ph == "X":
            ts, dur = ev.get("ts"), ev.get("dur")
            if not isinstance(ts, (int, float)) or not isinstance(
                dur, (int, float)
            ):
                fail(f"X event {i} needs numeric ts and dur")
            if dur < 0:
                fail(f"X event {i} has negative dur {dur}")
            span_names.add(ev["name"])
        if ph == "M" and ev["name"] == "thread_name":
            thread_names.append(ev.get("args", {}).get("name", ""))

    if not any(ev["ph"] == "M" and ev["name"] == "process_name" for ev in events):
        fail("no process_name metadata (trace would be one anonymous pid)")
    if not thread_names:
        fail("no thread_name metadata")

    kinds = {
        "core": sum(1 for n in thread_names if n.startswith("core ")),
        "vfi": sum(1 for n in thread_names if n.startswith("VFI island")),
        "phases": sum(1 for n in thread_names if n == "phases"),
        "noc": sum(1 for n in thread_names if n.startswith("NoC")),
    }
    for kind in ("core", "vfi", "phases"):
        if kinds[kind] == 0:
            fail(f"expected at least one {kind!r} track, names={thread_names[:8]}")
    if "map" not in span_names:
        fail(f"no 'map' phase span found; spans={sorted(span_names)[:12]}")

    print(
        f"check_trace: OK: {len(events)} events, tracks: "
        f"{kinds['core']} core / {kinds['vfi']} VFI / "
        f"{kinds['noc']} NoC / {kinds['phases']} phases; "
        f"{len(span_names)} distinct span names"
    )


def check_metrics(path):
    if path.endswith(".json"):
        with open(path, encoding="utf-8") as f:
            doc = json.load(f)
        if not isinstance(doc, dict) or not doc:
            fail("metrics JSON must be a non-empty object")
        for name, value in doc.items():
            if not isinstance(value, (int, float)):
                fail(f"metric {name!r} is not numeric: {value!r}")
        print(f"check_metrics: OK: {len(doc)} metrics")
    else:
        with open(path, newline="", encoding="utf-8") as f:
            rows = list(csv.reader(f))
        if len(rows) < 2 or "metric" not in [c.lower() for c in rows[0]]:
            fail("metrics CSV needs a header with a metric column and rows")
        print(f"check_metrics: OK: {len(rows) - 1} metrics (csv)")


def main(argv):
    if len(argv) < 2:
        fail("usage: check_trace.py TRACE.json [METRICS.{json,csv}]")
    check_trace(argv[1])
    if len(argv) > 2:
        check_metrics(argv[2])


if __name__ == "__main__":
    main(sys.argv)
