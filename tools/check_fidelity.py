#!/usr/bin/env python3
"""CI gate for the multi-fidelity network ladder (DESIGN.md §12).

Usage: check_fidelity.py BENCH_sweep.json [MIN_SPEEDUP] [MAX_LATENCY_MAPE]

Consumes the `bench_sweep.fidelity.*` metrics written by
bench_sweep_scaling's fidelity-ladder section (a fault-free design-space
sweep run twice: cycle-accurate everywhere vs Auto — analytical
exploration with cycle-accurate frontier confirmation) and enforces the
ladder's contract:

  * speedup_auto >= MIN_SPEEDUP (default 5.0) — the throughput the
    analytical band was built to buy.  Wall-seconds are machine-specific
    but both sweeps ran on the same box in the same process, so the ratio
    is the portable signal (same reasoning as check_sweep_overhead.py).
  * latency_mape <= MAX_LATENCY_MAPE (default 0.15) — mean abs latency
    error of the analytical band across the explored points, the
    fault-free half of the accuracy contract.  (Faulty-config accuracy is
    enforced at its committed — wider — tolerance by
    tests/test_fidelity_xval.cpp, which runs in tier-1.)
  * frontier_match == 1 — Auto's confirmed EDP argmin is the
    cycle-accurate sweep's argmin, i.e. exploring analytically did not
    change the answer, only the cost of finding it.
  * counters_consistent == 1 — the NetworkEvaluator's per-band hit/miss
    counters sum to the totals and both bands saw traffic; a failure here
    means evaluations are escaping their band's accounting.
"""

import json
import sys

PREFIX = "bench_sweep.fidelity."


def main(argv):
    if len(argv) < 2:
        print(
            "usage: check_fidelity.py BENCH_sweep.json"
            " [MIN_SPEEDUP] [MAX_LATENCY_MAPE]",
            file=sys.stderr,
        )
        sys.exit(1)
    min_speedup = float(argv[2]) if len(argv) > 2 else 5.0
    max_latency_mape = float(argv[3]) if len(argv) > 3 else 0.15

    with open(argv[1], encoding="utf-8") as f:
        doc = json.load(f)

    def metric(name):
        key = PREFIX + name
        if key not in doc:
            print(f"check_fidelity: FAIL: {argv[1]} has no {key}",
                  file=sys.stderr)
            sys.exit(1)
        return float(doc[key])

    speedup = metric("speedup_auto")
    latency_mape = metric("latency_mape")
    frontier_match = metric("frontier_match")
    counters_consistent = metric("counters_consistent")
    points = metric("points")

    print(
        f"check_fidelity: {points:.0f} design points, "
        f"Auto speedup {speedup:.2f}x (floor {min_speedup:.2f}x), "
        f"latency MAPE {latency_mape:.2%} (cap {max_latency_mape:.2%}), "
        f"frontier_match={frontier_match:.0f}, "
        f"counters_consistent={counters_consistent:.0f}"
    )

    failures = []
    if speedup < min_speedup:
        failures.append(
            f"Auto speedup {speedup:.2f}x below floor {min_speedup:.2f}x"
        )
    if latency_mape > max_latency_mape:
        failures.append(
            f"latency MAPE {latency_mape:.2%} above cap "
            f"{max_latency_mape:.2%}"
        )
    if frontier_match != 1.0:
        failures.append("Auto frontier does not match the cycle-accurate one")
    if counters_consistent != 1.0:
        failures.append("per-band evaluator counters are inconsistent")

    if failures:
        for f_msg in failures:
            print(f"check_fidelity: FAIL: {f_msg}", file=sys.stderr)
        sys.exit(1)
    print("check_fidelity: OK")


if __name__ == "__main__":
    main(sys.argv)
