#!/usr/bin/env python3
"""CI gate for serving-tier observability (DESIGN.md §15).

Usage: check_cluster_obs.py BENCH_cluster.json ATTRIBUTION.csv \
           TIMESERIES.csv [ATTRIBUTION_FAULTY.csv] [MAX_TRACED_RATIO]

Consumes the `bench_cluster.obs.*` metrics written by bench_cluster_serving
(and `bench_cluster.availability.obs_*` from bench_cluster_availability when
present) plus the CSV artifacts, and enforces the observability contract:

  * sink-off bit-identity — `obs.sink_identity` and
    `obs.sink_identity_faulty` must be 1: attaching the observer changed no
    completion digest, counter or latency/energy sum, clean or faulty.
  * bounded overhead — `obs.traced_ratio` (sink-on over sink-off wall time,
    same arrivals, same process) must stay under MAX_TRACED_RATIO (default
    8; the sink-off denominator is milliseconds on the small preset, so the
    bound is generous by design — it catches accidentally quadratic trace
    emission, not cache noise).
  * attribution exactness — for every CSV row, the documented
    left-to-right sum (((service + degraded) + backoff) + hedge_wait) +
    queue must reproduce latency_s *bit-exactly* in Python.  The C++ side
    prints %.17g so IEEE doubles round-trip; any inequality means the
    components were not constructed as the residual-nudged decomposition
    the report promises.  `obs.attribution_exact` must agree.
  * time-series shape — rows group by series; within a series, epochs
    strictly ascend, counts are positive, min <= mean <= max, mean equals
    sum/count bit-exactly, and epoch_start_s equals epoch * epoch_s.
"""

import csv
import json
import sys

PREFIX = "bench_cluster."

ATTR_COLUMNS = [
    "job", "app", "arrival_s", "latency_s", "service_s", "degraded_s",
    "backoff_s", "hedge_wait_s", "queue_s", "attempts", "hedged",
    "hedge_won", "cohort",
]
TS_COLUMNS = [
    "series", "epoch_s", "epoch", "epoch_start_s", "count", "sum", "mean",
    "min", "max",
]

# queue_s is a residual and may be driven a few ULPs negative by
# cancellation-heavy paths; anything visibly negative is a real bug.
QUEUE_FLOOR = -1e-9


def fail(msg):
    print(f"check_cluster_obs: FAIL: {msg}", file=sys.stderr)
    sys.exit(1)


def read_csv(path, columns):
    with open(path, newline="", encoding="utf-8") as f:
        rows = list(csv.reader(f))
    if not rows:
        fail(f"{path} is empty")
    if rows[0] != columns:
        fail(f"{path} header {rows[0]} != expected {columns}")
    out = []
    for i, row in enumerate(rows[1:], start=2):
        if len(row) != len(columns):
            fail(f"{path}:{i} has {len(row)} cells, expected {len(columns)}")
        out.append(dict(zip(columns, row)))
    return out


def check_attribution(path):
    rows = read_csv(path, ATTR_COLUMNS)
    if not rows:
        fail(f"{path} has no attribution rows (empty p99 cohort?)")
    p999 = 0
    for i, r in enumerate(rows, start=2):
        latency = float(r["latency_s"])
        total = (
            (
                (float(r["service_s"]) + float(r["degraded_s"]))
                + float(r["backoff_s"])
            )
            + float(r["hedge_wait_s"])
        ) + float(r["queue_s"])
        if total != latency:
            fail(
                f"{path}:{i} components sum to {total!r}, latency is "
                f"{latency!r} (job {r['job']}) — exactness contract broken"
            )
        for col in ("service_s", "degraded_s", "backoff_s", "hedge_wait_s"):
            if float(r[col]) < 0.0:
                fail(f"{path}:{i} negative {col} = {r[col]}")
        if float(r["queue_s"]) < QUEUE_FLOOR:
            fail(f"{path}:{i} queue_s {r['queue_s']} below the ULP floor")
        if r["cohort"] not in ("p99", "p999"):
            fail(f"{path}:{i} unknown cohort {r['cohort']!r}")
        p999 += r["cohort"] == "p999"
        if r["hedge_won"] == "1" and r["hedged"] != "1":
            fail(f"{path}:{i} hedge_won without hedged")
    print(
        f"check_cluster_obs: {path}: {len(rows)} tail rows "
        f"({p999} in the p999 cohort), every component sum exact"
    )
    return len(rows)


def check_timeseries(path):
    rows = read_csv(path, TS_COLUMNS)
    if not rows:
        fail(f"{path} has no epoch rows")
    series = {}
    for i, r in enumerate(rows, start=2):
        name = r["series"]
        epoch = int(r["epoch"])
        epoch_s = float(r["epoch_s"])
        count = int(r["count"])
        total = float(r["sum"])
        mean = float(r["mean"])
        lo, hi = float(r["min"]), float(r["max"])
        if count <= 0:
            fail(f"{path}:{i} epoch row with count {count}")
        if mean != total / count:
            fail(f"{path}:{i} mean {mean!r} != sum/count {total / count!r}")
        if not (lo <= mean <= hi):
            fail(f"{path}:{i} min {lo} <= mean {mean} <= max {hi} violated")
        if float(r["epoch_start_s"]) != epoch * epoch_s:
            fail(f"{path}:{i} epoch_start_s inconsistent with epoch * epoch_s")
        if name in series:
            prev_epoch, prev_width = series[name]
            if epoch <= prev_epoch:
                fail(
                    f"{path}:{i} series {name!r} epoch {epoch} does not "
                    f"ascend past {prev_epoch}"
                )
            if epoch_s != prev_width:
                fail(f"{path}:{i} series {name!r} changed epoch width")
        series[name] = (epoch, epoch_s)
    print(
        f"check_cluster_obs: {path}: {len(rows)} epoch rows across "
        f"{len(series)} series, monotone and self-consistent"
    )


def main(argv):
    if len(argv) < 4:
        print(
            "usage: check_cluster_obs.py BENCH_cluster.json ATTRIBUTION.csv"
            " TIMESERIES.csv [ATTRIBUTION_FAULTY.csv] [MAX_TRACED_RATIO]",
            file=sys.stderr,
        )
        sys.exit(1)
    faulty_csv = argv[4] if len(argv) > 4 else None
    max_ratio = float(argv[5]) if len(argv) > 5 else 8.0

    with open(argv[1], encoding="utf-8") as f:
        doc = json.load(f)

    def metric(name):
        key = PREFIX + name
        if key not in doc:
            fail(f"{argv[1]} has no {key}")
        return float(doc[key])

    identity = metric("obs.sink_identity")
    identity_faulty = metric("obs.sink_identity_faulty")
    exact = metric("obs.attribution_exact")
    ratio = metric("obs.traced_ratio")
    tracked = metric("obs.jobs_tracked")
    series = metric("obs.series")

    print(
        f"check_cluster_obs: sink identity clean={identity:.0f} "
        f"faulty={identity_faulty:.0f}, in-process exactness={exact:.0f}, "
        f"{tracked:.0f} jobs tracked across {series:.0f} series, "
        f"traced ratio {ratio:.2f}x (cap {max_ratio:.1f}x)"
    )

    failures = []
    if identity != 1.0:
        failures.append("sink-on run diverged from the sink-off report")
    if identity_faulty != 1.0:
        failures.append("faulty sink-on run diverged from its sink-off twin")
    if exact != 1.0:
        failures.append("bench-side attribution sums were not exact")
    if ratio > max_ratio:
        failures.append(
            f"traced overhead {ratio:.2f}x exceeds the {max_ratio:.1f}x cap"
        )
    avail_key = PREFIX + "availability.obs_identity"
    if avail_key in doc:
        if float(doc[avail_key]) != 1.0:
            failures.append("availability obs replay diverged")
        if float(doc.get(PREFIX + "availability.obs_attribution_exact", 0)) != 1.0:
            failures.append("availability attribution sums were not exact")

    if failures:
        for msg in failures:
            print(f"check_cluster_obs: FAIL: {msg}", file=sys.stderr)
        sys.exit(1)

    rows = check_attribution(argv[2])
    if rows != int(metric("obs.attribution_rows")):
        fail(
            f"{argv[2]} row count {rows} != obs.attribution_rows "
            f"{metric('obs.attribution_rows'):.0f}"
        )
    check_timeseries(argv[3])
    if faulty_csv:
        check_attribution(faulty_csv)
    print("check_cluster_obs: OK")


if __name__ == "__main__":
    main(sys.argv)
