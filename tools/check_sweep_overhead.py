#!/usr/bin/env python3
"""CI guard: the telemetry layer must not slow the untraced hot paths.

Usage: check_sweep_overhead.py COMMITTED.json FRESH.json [MAX_REGRESSION]
           [KEY]

Compares a higher-is-better ratio metric between a committed snapshot and a
freshly measured run.  By default the key is
`bench_sweep.speedup.fast_vs_reference_1t`: wall seconds differ across
machines and presets, but both stepping paths run on the same box in the
same process, so their ratio is the portable signal.  Telemetry's disabled
path is a single null-pointer test per site; if the fresh ratio drops more
than MAX_REGRESSION (default 3%) below the committed one, some "zero
overhead when disabled" claim has regressed and the build fails.

Passing KEY reuses the same committed-vs-fresh floor for other
machine-portable products — CI points it at
`bench_cluster.obs.loop_vs_matrix` (serving throughput x service-matrix
seconds: the two factors move with host speed in opposite directions, so
the product flags a serving-loop slowdown, not a slower runner) with a
correspondingly looser MAX_REGRESSION.
"""

import json
import sys

DEFAULT_KEY = "bench_sweep.speedup.fast_vs_reference_1t"


def load_ratio(path, key):
    with open(path, encoding="utf-8") as f:
        doc = json.load(f)
    if key not in doc:
        print(f"check_sweep_overhead: FAIL: {path} has no {key}", file=sys.stderr)
        sys.exit(1)
    return float(doc[key]), doc


def main(argv):
    if len(argv) < 3:
        print(
            "usage: check_sweep_overhead.py COMMITTED.json FRESH.json"
            " [MAX_REGRESSION] [KEY]",
            file=sys.stderr,
        )
        sys.exit(1)
    max_regression = float(argv[3]) if len(argv) > 3 else 0.03
    key = argv[4] if len(argv) > 4 else DEFAULT_KEY

    committed, cdoc = load_ratio(argv[1], key)
    fresh, fdoc = load_ratio(argv[2], key)
    floor = (1.0 - max_regression) * committed

    if cdoc.get("bench_sweep.config.small") != fdoc.get(
        "bench_sweep.config.small"
    ):
        print(
            "check_sweep_overhead: note: committed and fresh runs use "
            "different presets; the speedup ratio is still comparable, "
            "wall seconds are not"
        )

    print(
        f"check_sweep_overhead: committed {key} = {committed:.3f}, "
        f"fresh = {fresh:.3f}, floor = {floor:.3f} "
        f"(max regression {max_regression:.0%})"
    )
    if fresh < floor:
        print(
            f"check_sweep_overhead: FAIL: fresh {key} {fresh:.3f} fell "
            f"below {floor:.3f} — the untraced path slowed down",
            file=sys.stderr,
        )
        sys.exit(1)
    print("check_sweep_overhead: OK")


if __name__ == "__main__":
    main(sys.argv)
