// Design-space exploration / ablation study for one application.
//
// Sweeps the WiNoC construction knobs the paper fixes by experiment —
// (k_intra, k_inter) split, WI placement methodology, wiring-cost exponent
// alpha — plus the scheduler policy (Eq. 3 readings), and reports
// full-system execution time and EDP relative to the NVFI mesh baseline.
//
// Run: ./build/examples/design_space [APP]   (default KMEANS)

#include <iostream>
#include <string>

#include "common/table.hpp"
#include "sysmodel/system_sim.hpp"
#include "workload/profile.hpp"

using namespace vfimr;

int main(int argc, char** argv) {
  workload::App app = workload::App::kKmeans;
  if (argc > 1) {
    for (workload::App a : workload::kAllApps) {
      if (workload::app_name(a) == argv[1]) app = a;
    }
  }
  const auto profile = workload::make_profile(app);
  const sysmodel::FullSystemSim sim;

  sysmodel::PlatformParams base;
  base.kind = sysmodel::SystemKind::kNvfiMesh;
  const auto nvfi = sim.run(profile, base);
  const double base_lat = nvfi.net.avg_latency_cycles;
  const double base_edp = nvfi.edp_js();
  std::cout << "Design-space exploration for " << profile.name()
            << " (all numbers vs NVFI mesh)\n\n";

  TextTable t{{"Variant", "Exec time", "EDP", "Net latency (cyc)",
               "Wireless %"}};
  auto run = [&](const std::string& label, sysmodel::PlatformParams params) {
    params.kind = sysmodel::SystemKind::kVfiWinoc;
    const auto r = sim.run(profile, params, base_lat);
    t.add_row({label, fmt(r.exec_s / nvfi.exec_s), fmt(r.edp_js() / base_edp),
               fmt(r.net.avg_latency_cycles, 1),
               fmt_pct(r.net.wireless_utilization)});
  };

  {
    sysmodel::PlatformParams p;
    run("baseline: (3,1), max-wireless, Eq.3 assignment", p);
  }
  {
    sysmodel::PlatformParams p;
    p.smallworld.k_intra = 2.0;
    p.smallworld.k_inter = 2.0;
    run("(k_intra,k_inter) = (2,2)", p);
  }
  {
    sysmodel::PlatformParams p;
    p.placement = winoc::PlacementStrategy::kMinHopCount;
    run("min-hop-count WI placement", p);
  }
  {
    sysmodel::PlatformParams p;
    p.smallworld.alpha = 3.0;
    run("wiring alpha = 3.0 (very local links)", p);
  }
  {
    sysmodel::PlatformParams p;
    p.smallworld.alpha = 1.2;
    run("wiring alpha = 1.2 (long links)", p);
  }
  {
    sysmodel::PlatformParams p;
    p.vfi_stealing = sysmodel::StealingPolicy::kPhoenixDefault;
    run("unmodified Phoenix stealing", p);
  }
  {
    sysmodel::PlatformParams p;
    p.vfi_stealing = sysmodel::StealingPolicy::kVfiHardCap;
    run("Eq.3 hard execution cap", p);
  }
  {
    sysmodel::PlatformParams p;
    p.use_vfi2 = false;
    run("VFI 1 (no bottleneck reassignment)", p);
  }

  std::cout << t.to_string();
  return 0;
}
