// Design-space exploration / ablation study for one application.
//
// Sweeps the WiNoC construction knobs the paper fixes by experiment —
// (k_intra, k_inter) split, WI placement methodology, wiring-cost exponent
// alpha — plus the scheduler policy (Eq. 3 readings), and reports
// full-system execution time and EDP relative to the NVFI mesh baseline.
//
// Run: ./build/examples/design_space [APP]   (default KMEANS)

#include <iostream>
#include <string>
#include <vector>

#include "common/parallel_for.hpp"
#include "common/table.hpp"
#include "sysmodel/system_sim.hpp"
#include "workload/profile.hpp"

using namespace vfimr;

int main(int argc, char** argv) {
  workload::App app = workload::App::kKmeans;
  if (argc > 1) {
    for (workload::App a : workload::kAllApps) {
      if (workload::app_name(a) == argv[1]) app = a;
    }
  }
  const auto profile = workload::make_profile(app);
  const sysmodel::FullSystemSim sim;

  sysmodel::PlatformParams base;
  base.kind = sysmodel::SystemKind::kNvfiMesh;
  const auto nvfi = sim.run(profile, base);
  const double base_lat = nvfi.net.avg_latency_cycles;
  const double base_edp = nvfi.edp_js();
  std::cout << "Design-space exploration for " << profile.name()
            << " (all numbers vs NVFI mesh)\n\n";

  // Collect all ablation variants first, then fan the independent runs out
  // over the parallel experiment runner; rows are emitted in declaration
  // order, so the table is identical for any thread count.
  std::vector<std::pair<std::string, sysmodel::PlatformParams>> variants;
  auto variant = [&](const std::string& label, auto&& tweak) {
    sysmodel::PlatformParams p;
    tweak(p);
    variants.emplace_back(label, p);
  };
  variant("baseline: (3,1), max-wireless, Eq.3 assignment",
          [](sysmodel::PlatformParams&) {});
  variant("(k_intra,k_inter) = (2,2)", [](sysmodel::PlatformParams& p) {
    p.smallworld.k_intra = 2.0;
    p.smallworld.k_inter = 2.0;
  });
  variant("min-hop-count WI placement", [](sysmodel::PlatformParams& p) {
    p.placement = winoc::PlacementStrategy::kMinHopCount;
  });
  variant("wiring alpha = 3.0 (very local links)",
          [](sysmodel::PlatformParams& p) { p.smallworld.alpha = 3.0; });
  variant("wiring alpha = 1.2 (long links)",
          [](sysmodel::PlatformParams& p) { p.smallworld.alpha = 1.2; });
  variant("unmodified Phoenix stealing", [](sysmodel::PlatformParams& p) {
    p.vfi_stealing = sysmodel::StealingPolicy::kPhoenixDefault;
  });
  variant("Eq.3 hard execution cap", [](sysmodel::PlatformParams& p) {
    p.vfi_stealing = sysmodel::StealingPolicy::kVfiHardCap;
  });
  variant("VFI 1 (no bottleneck reassignment)",
          [](sysmodel::PlatformParams& p) { p.use_vfi2 = false; });

  std::vector<sysmodel::SystemReport> reports(variants.size());
  parallel_for(variants.size(), default_parallelism(), [&](std::size_t i) {
    auto params = variants[i].second;
    params.kind = sysmodel::SystemKind::kVfiWinoc;
    reports[i] = sim.run(profile, params, base_lat);
  });

  TextTable t{{"Variant", "Exec time", "EDP", "Net latency (cyc)",
               "Wireless %"}};
  for (std::size_t i = 0; i < variants.size(); ++i) {
    const auto& r = reports[i];
    t.add_row({variants[i].first, fmt(r.exec_s / nvfi.exec_s),
               fmt(r.edp_js() / base_edp), fmt(r.net.avg_latency_cycles, 1),
               fmt_pct(r.net.wireless_utilization)});
  }

  std::cout << t.to_string();
  return 0;
}
