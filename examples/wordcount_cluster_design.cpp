// Profile-driven VFI design from a REAL MapReduce run.
//
// This example closes the loop the paper assumes: it executes the actual
// threaded Word Count application (the Phoenix++-style runtime in
// src/mapreduce), extracts the measured per-worker utilization vector and
// the shuffle traffic matrix from the job profile, and feeds them into the
// Eq. 1 clustering + V/F assignment flow.  With 64 host threads this is a
// live version of the paper's GEM5 profiling step.
//
// Run: ./build/examples/wordcount_cluster_design [words]

#include <cstdlib>
#include <iostream>

#include "common/table.hpp"
#include "mapreduce/apps/wordcount.hpp"
#include "vfi/vf_assign.hpp"

using namespace vfimr;

int main(int argc, char** argv) {
  mr::apps::WordCountConfig cfg;
  cfg.word_count = argc > 1 ? std::strtoull(argv[1], nullptr, 10) : 400'000;
  cfg.vocabulary = 8'000;
  cfg.map_tasks = 128;
  cfg.scheduler.workers = 64;  // one worker per modeled core

  std::cout << "Running threaded Word Count: " << cfg.word_count
            << " words, " << cfg.map_tasks << " map tasks, "
            << cfg.scheduler.workers << " workers...\n";
  const auto result = mr::apps::run_word_count(cfg);
  const auto& prof = result.profile;
  std::cout << "  unique words: " << result.counts.size()
            << ", total: " << result.total_words << "\n"
            << "  phases (s): map " << fmt(prof.phases.map_s) << ", reduce "
            << fmt(prof.phases.reduce_s) << ", merge "
            << fmt(prof.phases.merge_s) << "\n\n";

  // ---- Measured utilization: per-worker busy time / wall time.
  const double wall =
      prof.map_stats.wall_seconds + prof.reduce_stats.wall_seconds;
  std::vector<double> utilization(cfg.scheduler.workers, 0.0);
  for (std::size_t w = 0; w < cfg.scheduler.workers; ++w) {
    const double busy =
        prof.map_stats.busy_seconds[w] + prof.reduce_stats.busy_seconds[w];
    utilization[w] = wall > 0.0 ? std::clamp(busy / wall, 0.01, 1.0) : 0.5;
  }

  // ---- Measured traffic: the shuffle matrix (map worker -> reduce
  // partition = reduce worker under the default partitioning).
  Matrix traffic{cfg.scheduler.workers, cfg.scheduler.workers};
  for (std::size_t s = 0; s < prof.shuffle_pairs.rows(); ++s) {
    for (std::size_t d = 0; d < prof.shuffle_pairs.cols(); ++d) {
      if (s != d) traffic(s, d) = prof.shuffle_pairs(s, d);
    }
  }

  // ---- The Fig. 3 design flow on the measured data.
  const auto design = vfi::design_vfi(utilization, traffic, {0},
                                      power::VfTable::standard());

  TextTable t{{"Cluster", "Mean util", "Threads", "VFI 1", "VFI 2"}};
  for (std::size_t c = 0; c < design.vfi1.size(); ++c) {
    double sum = 0.0;
    std::size_t count = 0;
    for (std::size_t w = 0; w < utilization.size(); ++w) {
      if (design.assignment[w] == c) {
        sum += utilization[w];
        ++count;
      }
    }
    t.add_row({std::to_string(c + 1), fmt(sum / std::max<std::size_t>(count, 1)),
               std::to_string(count), design.vfi1[c].label(),
               design.vfi2[c].label()});
  }
  std::cout << "VFI design from the measured profile:\n" << t.to_string();
  std::cout << "(clustering objective value: " << fmt(design.clustering_cost)
            << ")\n";
  return 0;
}
