// Network diagnostics: build each app's mesh and WiNoC, drive them with the
// mapped traffic, and report load, latency, drain status and topology stats.
// Used to validate the interconnect before full-system experiments.

#include <algorithm>
#include <string>
#include <iostream>

#include "common/table.hpp"
#include "noc/traffic.hpp"
#include "sysmodel/platform.hpp"
#include "workload/profile.hpp"

using namespace vfimr;

int main(int argc, char** argv) {
  const power::VfTable& table = power::VfTable::standard();
  const power::NocPowerModel noc_power;
  workload::App only = workload::App::kHist;
  bool all = true;
  if (argc > 1) {
    all = false;
    for (workload::App a : workload::kAllApps) {
      if (workload::app_name(a) == argv[1]) only = a;
    }
  }
  // Optional injection-rate scale (default 1.0) for saturation sweeps.
  const double scale = argc > 2 ? std::stod(argv[2]) : 1.0;

  TextTable out{{"App", "System", "inj p/cyc", "flits", "avg lat", "max deg",
                 "avg hops", "wless%", "drained", "in-flight"}};
  for (workload::App app : workload::kAllApps) {
    if (!all && app != only) continue;
    auto profile = workload::make_profile(app);
    for (auto& v : profile.traffic.data()) v *= scale;
    for (auto kind : {sysmodel::SystemKind::kVfiMesh,
                      sysmodel::SystemKind::kVfiWinoc}) {
      sysmodel::PlatformParams params;
      params.kind = kind;
      auto built = sysmodel::build_platform(profile, params, table);
      const auto eval =
          sysmodel::evaluate_network(built, profile, params, noc_power);
      std::size_t max_deg = 0;
      for (graph::NodeId v = 0; v < built.topology.graph.node_count(); ++v) {
        max_deg = std::max(max_deg, built.topology.graph.degree(v));
      }
      // Average routed hops = switch traversals per ejected flit.
      const double hops =
          eval.flits_delivered
              ? static_cast<double>(eval.metrics.energy.switch_traversals) /
                    static_cast<double>(eval.flits_delivered)
              : 0.0;
      noc::Network probe{built.topology, *built.routing, params.noc_sim,
                         built.wireless};
      out.add_row({profile.name(), sysmodel::system_name(kind),
                   fmt(built.node_traffic.sum(), 3),
                   std::to_string(eval.flits_delivered),
                   fmt(eval.avg_latency_cycles, 1), std::to_string(max_deg),
                   fmt(hops, 2), fmt_pct(eval.wireless_utilization),
                   eval.drained ? "yes" : "NO",
                   std::to_string(eval.metrics.packets_injected -
                                  eval.metrics.packets_ejected)});
    }
  }
  std::cout << out.to_string();
  return 0;
}
