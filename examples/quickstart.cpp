// Quickstart: the complete VFI + WiNoC design flow on one MapReduce
// application, printing the paper's headline metrics.
//
//   1. load the calibrated Word Count profile (utilization, traffic, tasks);
//   2. run the Fig. 3 design flow (Eq. 1 clustering -> V/F -> reassignment);
//   3. simulate NVFI mesh, VFI mesh and VFI WiNoC full systems;
//   4. report execution time and EDP normalized to the NVFI mesh.
//
// Build & run:  ./build/examples/quickstart [APP]
// APP is one of HIST, KMEANS, LR, MM, PCA, WC (default WC).

#include <iostream>
#include <string>

#include "common/table.hpp"
#include "sysmodel/system_sim.hpp"
#include "workload/profile.hpp"

using namespace vfimr;

int main(int argc, char** argv) {
  workload::App app = workload::App::kWC;
  if (argc > 1) {
    const std::string want = argv[1];
    bool found = false;
    for (workload::App a : workload::kAllApps) {
      if (workload::app_name(a) == want) {
        app = a;
        found = true;
      }
    }
    if (!found) {
      std::cerr << "unknown app '" << want
                << "' (use HIST, KMEANS, LR, MM, PCA or WC)\n";
      return 1;
    }
  }

  const workload::AppProfile profile = workload::make_profile(app);
  std::cout << "Application: " << profile.name() << " ("
            << workload::app_dataset(app) << ")\n"
            << "Mean utilization: " << fmt(profile.mean_utilization())
            << ", masters: " << profile.master_threads.size()
            << ", MapReduce iterations: " << profile.iterations << "\n\n";

  const sysmodel::FullSystemSim sim;
  const auto cmp = sysmodel::compare_systems(profile, sim);

  // VFI design summary (from the WiNoC run; mesh/WiNoC share the design).
  const auto& design = cmp.vfi_winoc.vfi;
  TextTable vf_table{{"Cluster", "VFI 1 (V/GHz)", "VFI 2 (V/GHz)"}};
  for (std::size_t c = 0; c < design.vfi1.size(); ++c) {
    vf_table.add_row({std::to_string(c + 1), design.vfi1[c].label(),
                      design.vfi2[c].label()});
  }
  std::cout << "VFI design (Eq. 1 clustering + V/F assignment):\n"
            << vf_table.to_string() << "\n";

  const double base_t = cmp.nvfi_mesh.exec_s;
  const double base_edp = cmp.nvfi_mesh.edp_js();
  TextTable results{{"System", "Exec time (s)", "Norm. time", "Energy (J)",
                     "Norm. EDP", "Avg net latency (cyc)"}};
  for (const auto* r : {&cmp.nvfi_mesh, &cmp.vfi_mesh, &cmp.vfi_winoc}) {
    results.add_row({sysmodel::system_name(r->kind), fmt(r->exec_s),
                     fmt(r->exec_s / base_t), fmt(r->total_energy_j(), 1),
                     fmt(r->edp_js() / base_edp),
                     fmt(r->net.avg_latency_cycles, 1)});
  }
  std::cout << results.to_string() << "\n"
            << "EDP saving of VFI WiNoC over NVFI mesh: "
            << fmt_pct(1.0 - cmp.vfi_winoc.edp_js() / base_edp) << "\n";
  return 0;
}
