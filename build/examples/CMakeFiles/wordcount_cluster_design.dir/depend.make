# Empty dependencies file for wordcount_cluster_design.
# This may be replaced when dependencies are built.
