file(REMOVE_RECURSE
  "CMakeFiles/wordcount_cluster_design.dir/wordcount_cluster_design.cpp.o"
  "CMakeFiles/wordcount_cluster_design.dir/wordcount_cluster_design.cpp.o.d"
  "wordcount_cluster_design"
  "wordcount_cluster_design.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/wordcount_cluster_design.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
