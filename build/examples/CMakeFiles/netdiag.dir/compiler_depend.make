# Empty compiler generated dependencies file for netdiag.
# This may be replaced when dependencies are built.
