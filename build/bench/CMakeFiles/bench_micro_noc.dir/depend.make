# Empty dependencies file for bench_micro_noc.
# This may be replaced when dependencies are built.
