file(REMOVE_RECURSE
  "CMakeFiles/bench_micro_noc.dir/bench_micro_noc.cpp.o"
  "CMakeFiles/bench_micro_noc.dir/bench_micro_noc.cpp.o.d"
  "bench_micro_noc"
  "bench_micro_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_micro_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
