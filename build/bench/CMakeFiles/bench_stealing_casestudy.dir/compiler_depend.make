# Empty compiler generated dependencies file for bench_stealing_casestudy.
# This may be replaced when dependencies are built.
