file(REMOVE_RECURSE
  "CMakeFiles/bench_stealing_casestudy.dir/bench_stealing_casestudy.cpp.o"
  "CMakeFiles/bench_stealing_casestudy.dir/bench_stealing_casestudy.cpp.o.d"
  "bench_stealing_casestudy"
  "bench_stealing_casestudy.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_stealing_casestudy.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
