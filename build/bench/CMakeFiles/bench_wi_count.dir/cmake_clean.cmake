file(REMOVE_RECURSE
  "CMakeFiles/bench_wi_count.dir/bench_wi_count.cpp.o"
  "CMakeFiles/bench_wi_count.dir/bench_wi_count.cpp.o.d"
  "bench_wi_count"
  "bench_wi_count.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_wi_count.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
