# Empty compiler generated dependencies file for bench_wi_count.
# This may be replaced when dependencies are built.
