# Empty dependencies file for bench_fig4_bottleneck.
# This may be replaced when dependencies are built.
