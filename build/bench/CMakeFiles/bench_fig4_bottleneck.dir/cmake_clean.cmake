file(REMOVE_RECURSE
  "CMakeFiles/bench_fig4_bottleneck.dir/bench_fig4_bottleneck.cpp.o"
  "CMakeFiles/bench_fig4_bottleneck.dir/bench_fig4_bottleneck.cpp.o.d"
  "bench_fig4_bottleneck"
  "bench_fig4_bottleneck.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_fig4_bottleneck.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
