file(REMOVE_RECURSE
  "CMakeFiles/bench_kintra_kinter.dir/bench_kintra_kinter.cpp.o"
  "CMakeFiles/bench_kintra_kinter.dir/bench_kintra_kinter.cpp.o.d"
  "bench_kintra_kinter"
  "bench_kintra_kinter.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_kintra_kinter.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
