# Empty compiler generated dependencies file for bench_kintra_kinter.
# This may be replaced when dependencies are built.
