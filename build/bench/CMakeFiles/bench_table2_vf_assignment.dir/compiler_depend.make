# Empty compiler generated dependencies file for bench_table2_vf_assignment.
# This may be replaced when dependencies are built.
