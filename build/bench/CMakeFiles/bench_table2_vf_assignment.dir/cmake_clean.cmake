file(REMOVE_RECURSE
  "CMakeFiles/bench_table2_vf_assignment.dir/bench_table2_vf_assignment.cpp.o"
  "CMakeFiles/bench_table2_vf_assignment.dir/bench_table2_vf_assignment.cpp.o.d"
  "bench_table2_vf_assignment"
  "bench_table2_vf_assignment.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/bench_table2_vf_assignment.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
