file(REMOVE_RECURSE
  "CMakeFiles/vfimr_power.dir/core_power.cpp.o"
  "CMakeFiles/vfimr_power.dir/core_power.cpp.o.d"
  "CMakeFiles/vfimr_power.dir/noc_power.cpp.o"
  "CMakeFiles/vfimr_power.dir/noc_power.cpp.o.d"
  "CMakeFiles/vfimr_power.dir/vf_table.cpp.o"
  "CMakeFiles/vfimr_power.dir/vf_table.cpp.o.d"
  "libvfimr_power.a"
  "libvfimr_power.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfimr_power.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
