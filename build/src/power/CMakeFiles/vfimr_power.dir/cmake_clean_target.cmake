file(REMOVE_RECURSE
  "libvfimr_power.a"
)
