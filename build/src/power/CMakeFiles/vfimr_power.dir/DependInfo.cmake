
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/power/core_power.cpp" "src/power/CMakeFiles/vfimr_power.dir/core_power.cpp.o" "gcc" "src/power/CMakeFiles/vfimr_power.dir/core_power.cpp.o.d"
  "/root/repo/src/power/noc_power.cpp" "src/power/CMakeFiles/vfimr_power.dir/noc_power.cpp.o" "gcc" "src/power/CMakeFiles/vfimr_power.dir/noc_power.cpp.o.d"
  "/root/repo/src/power/vf_table.cpp" "src/power/CMakeFiles/vfimr_power.dir/vf_table.cpp.o" "gcc" "src/power/CMakeFiles/vfimr_power.dir/vf_table.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vfimr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/vfimr_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/vfimr_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
