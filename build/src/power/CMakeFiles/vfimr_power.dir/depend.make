# Empty dependencies file for vfimr_power.
# This may be replaced when dependencies are built.
