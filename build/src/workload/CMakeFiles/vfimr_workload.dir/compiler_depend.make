# Empty compiler generated dependencies file for vfimr_workload.
# This may be replaced when dependencies are built.
