file(REMOVE_RECURSE
  "CMakeFiles/vfimr_workload.dir/app.cpp.o"
  "CMakeFiles/vfimr_workload.dir/app.cpp.o.d"
  "CMakeFiles/vfimr_workload.dir/catalog.cpp.o"
  "CMakeFiles/vfimr_workload.dir/catalog.cpp.o.d"
  "CMakeFiles/vfimr_workload.dir/from_runtime.cpp.o"
  "CMakeFiles/vfimr_workload.dir/from_runtime.cpp.o.d"
  "CMakeFiles/vfimr_workload.dir/generators.cpp.o"
  "CMakeFiles/vfimr_workload.dir/generators.cpp.o.d"
  "libvfimr_workload.a"
  "libvfimr_workload.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfimr_workload.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
