file(REMOVE_RECURSE
  "libvfimr_workload.a"
)
