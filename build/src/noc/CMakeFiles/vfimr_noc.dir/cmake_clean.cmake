file(REMOVE_RECURSE
  "CMakeFiles/vfimr_noc.dir/network.cpp.o"
  "CMakeFiles/vfimr_noc.dir/network.cpp.o.d"
  "CMakeFiles/vfimr_noc.dir/routing.cpp.o"
  "CMakeFiles/vfimr_noc.dir/routing.cpp.o.d"
  "CMakeFiles/vfimr_noc.dir/topology.cpp.o"
  "CMakeFiles/vfimr_noc.dir/topology.cpp.o.d"
  "CMakeFiles/vfimr_noc.dir/traffic.cpp.o"
  "CMakeFiles/vfimr_noc.dir/traffic.cpp.o.d"
  "libvfimr_noc.a"
  "libvfimr_noc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfimr_noc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
