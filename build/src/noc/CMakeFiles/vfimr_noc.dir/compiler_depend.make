# Empty compiler generated dependencies file for vfimr_noc.
# This may be replaced when dependencies are built.
