file(REMOVE_RECURSE
  "libvfimr_noc.a"
)
