file(REMOVE_RECURSE
  "CMakeFiles/vfimr_common.dir/rng.cpp.o"
  "CMakeFiles/vfimr_common.dir/rng.cpp.o.d"
  "CMakeFiles/vfimr_common.dir/stats.cpp.o"
  "CMakeFiles/vfimr_common.dir/stats.cpp.o.d"
  "CMakeFiles/vfimr_common.dir/table.cpp.o"
  "CMakeFiles/vfimr_common.dir/table.cpp.o.d"
  "libvfimr_common.a"
  "libvfimr_common.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfimr_common.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
