file(REMOVE_RECURSE
  "libvfimr_common.a"
)
