# Empty compiler generated dependencies file for vfimr_common.
# This may be replaced when dependencies are built.
