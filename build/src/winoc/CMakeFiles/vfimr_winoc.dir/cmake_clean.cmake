file(REMOVE_RECURSE
  "CMakeFiles/vfimr_winoc.dir/design.cpp.o"
  "CMakeFiles/vfimr_winoc.dir/design.cpp.o.d"
  "CMakeFiles/vfimr_winoc.dir/smallworld.cpp.o"
  "CMakeFiles/vfimr_winoc.dir/smallworld.cpp.o.d"
  "CMakeFiles/vfimr_winoc.dir/thread_mapping.cpp.o"
  "CMakeFiles/vfimr_winoc.dir/thread_mapping.cpp.o.d"
  "CMakeFiles/vfimr_winoc.dir/wi_placement.cpp.o"
  "CMakeFiles/vfimr_winoc.dir/wi_placement.cpp.o.d"
  "libvfimr_winoc.a"
  "libvfimr_winoc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfimr_winoc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
