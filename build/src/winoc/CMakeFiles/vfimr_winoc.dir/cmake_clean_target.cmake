file(REMOVE_RECURSE
  "libvfimr_winoc.a"
)
