# Empty dependencies file for vfimr_winoc.
# This may be replaced when dependencies are built.
