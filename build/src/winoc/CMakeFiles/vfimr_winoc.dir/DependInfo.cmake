
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/winoc/design.cpp" "src/winoc/CMakeFiles/vfimr_winoc.dir/design.cpp.o" "gcc" "src/winoc/CMakeFiles/vfimr_winoc.dir/design.cpp.o.d"
  "/root/repo/src/winoc/smallworld.cpp" "src/winoc/CMakeFiles/vfimr_winoc.dir/smallworld.cpp.o" "gcc" "src/winoc/CMakeFiles/vfimr_winoc.dir/smallworld.cpp.o.d"
  "/root/repo/src/winoc/thread_mapping.cpp" "src/winoc/CMakeFiles/vfimr_winoc.dir/thread_mapping.cpp.o" "gcc" "src/winoc/CMakeFiles/vfimr_winoc.dir/thread_mapping.cpp.o.d"
  "/root/repo/src/winoc/wi_placement.cpp" "src/winoc/CMakeFiles/vfimr_winoc.dir/wi_placement.cpp.o" "gcc" "src/winoc/CMakeFiles/vfimr_winoc.dir/wi_placement.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vfimr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/vfimr_graph.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/vfimr_noc.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
