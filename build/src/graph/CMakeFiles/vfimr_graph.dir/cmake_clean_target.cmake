file(REMOVE_RECURSE
  "libvfimr_graph.a"
)
