# Empty compiler generated dependencies file for vfimr_graph.
# This may be replaced when dependencies are built.
