file(REMOVE_RECURSE
  "CMakeFiles/vfimr_graph.dir/graph.cpp.o"
  "CMakeFiles/vfimr_graph.dir/graph.cpp.o.d"
  "libvfimr_graph.a"
  "libvfimr_graph.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfimr_graph.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
