file(REMOVE_RECURSE
  "libvfimr_sysmodel.a"
)
