# Empty dependencies file for vfimr_sysmodel.
# This may be replaced when dependencies are built.
