file(REMOVE_RECURSE
  "CMakeFiles/vfimr_sysmodel.dir/platform.cpp.o"
  "CMakeFiles/vfimr_sysmodel.dir/platform.cpp.o.d"
  "CMakeFiles/vfimr_sysmodel.dir/system_sim.cpp.o"
  "CMakeFiles/vfimr_sysmodel.dir/system_sim.cpp.o.d"
  "CMakeFiles/vfimr_sysmodel.dir/task_sim.cpp.o"
  "CMakeFiles/vfimr_sysmodel.dir/task_sim.cpp.o.d"
  "libvfimr_sysmodel.a"
  "libvfimr_sysmodel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfimr_sysmodel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
