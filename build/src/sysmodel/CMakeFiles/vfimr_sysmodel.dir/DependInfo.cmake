
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/sysmodel/platform.cpp" "src/sysmodel/CMakeFiles/vfimr_sysmodel.dir/platform.cpp.o" "gcc" "src/sysmodel/CMakeFiles/vfimr_sysmodel.dir/platform.cpp.o.d"
  "/root/repo/src/sysmodel/system_sim.cpp" "src/sysmodel/CMakeFiles/vfimr_sysmodel.dir/system_sim.cpp.o" "gcc" "src/sysmodel/CMakeFiles/vfimr_sysmodel.dir/system_sim.cpp.o.d"
  "/root/repo/src/sysmodel/task_sim.cpp" "src/sysmodel/CMakeFiles/vfimr_sysmodel.dir/task_sim.cpp.o" "gcc" "src/sysmodel/CMakeFiles/vfimr_sysmodel.dir/task_sim.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vfimr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/vfimr_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/vfimr_power.dir/DependInfo.cmake"
  "/root/repo/build/src/vfi/CMakeFiles/vfimr_vfi.dir/DependInfo.cmake"
  "/root/repo/build/src/winoc/CMakeFiles/vfimr_winoc.dir/DependInfo.cmake"
  "/root/repo/build/src/workload/CMakeFiles/vfimr_workload.dir/DependInfo.cmake"
  "/root/repo/build/src/mapreduce/CMakeFiles/vfimr_mapreduce.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/vfimr_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
