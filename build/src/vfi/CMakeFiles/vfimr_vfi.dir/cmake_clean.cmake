file(REMOVE_RECURSE
  "CMakeFiles/vfimr_vfi.dir/clustering.cpp.o"
  "CMakeFiles/vfimr_vfi.dir/clustering.cpp.o.d"
  "CMakeFiles/vfimr_vfi.dir/vf_assign.cpp.o"
  "CMakeFiles/vfimr_vfi.dir/vf_assign.cpp.o.d"
  "libvfimr_vfi.a"
  "libvfimr_vfi.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfimr_vfi.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
