
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/vfi/clustering.cpp" "src/vfi/CMakeFiles/vfimr_vfi.dir/clustering.cpp.o" "gcc" "src/vfi/CMakeFiles/vfimr_vfi.dir/clustering.cpp.o.d"
  "/root/repo/src/vfi/vf_assign.cpp" "src/vfi/CMakeFiles/vfimr_vfi.dir/vf_assign.cpp.o" "gcc" "src/vfi/CMakeFiles/vfimr_vfi.dir/vf_assign.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vfimr_common.dir/DependInfo.cmake"
  "/root/repo/build/src/power/CMakeFiles/vfimr_power.dir/DependInfo.cmake"
  "/root/repo/build/src/noc/CMakeFiles/vfimr_noc.dir/DependInfo.cmake"
  "/root/repo/build/src/graph/CMakeFiles/vfimr_graph.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
