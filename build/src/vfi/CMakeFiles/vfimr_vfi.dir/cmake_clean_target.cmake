file(REMOVE_RECURSE
  "libvfimr_vfi.a"
)
