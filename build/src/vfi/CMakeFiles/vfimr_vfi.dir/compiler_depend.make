# Empty compiler generated dependencies file for vfimr_vfi.
# This may be replaced when dependencies are built.
