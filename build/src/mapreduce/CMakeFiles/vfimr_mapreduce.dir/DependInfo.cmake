
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/mapreduce/apps/histogram.cpp" "src/mapreduce/CMakeFiles/vfimr_mapreduce.dir/apps/histogram.cpp.o" "gcc" "src/mapreduce/CMakeFiles/vfimr_mapreduce.dir/apps/histogram.cpp.o.d"
  "/root/repo/src/mapreduce/apps/kmeans.cpp" "src/mapreduce/CMakeFiles/vfimr_mapreduce.dir/apps/kmeans.cpp.o" "gcc" "src/mapreduce/CMakeFiles/vfimr_mapreduce.dir/apps/kmeans.cpp.o.d"
  "/root/repo/src/mapreduce/apps/linear_regression.cpp" "src/mapreduce/CMakeFiles/vfimr_mapreduce.dir/apps/linear_regression.cpp.o" "gcc" "src/mapreduce/CMakeFiles/vfimr_mapreduce.dir/apps/linear_regression.cpp.o.d"
  "/root/repo/src/mapreduce/apps/matrix_multiply.cpp" "src/mapreduce/CMakeFiles/vfimr_mapreduce.dir/apps/matrix_multiply.cpp.o" "gcc" "src/mapreduce/CMakeFiles/vfimr_mapreduce.dir/apps/matrix_multiply.cpp.o.d"
  "/root/repo/src/mapreduce/apps/pca.cpp" "src/mapreduce/CMakeFiles/vfimr_mapreduce.dir/apps/pca.cpp.o" "gcc" "src/mapreduce/CMakeFiles/vfimr_mapreduce.dir/apps/pca.cpp.o.d"
  "/root/repo/src/mapreduce/apps/wordcount.cpp" "src/mapreduce/CMakeFiles/vfimr_mapreduce.dir/apps/wordcount.cpp.o" "gcc" "src/mapreduce/CMakeFiles/vfimr_mapreduce.dir/apps/wordcount.cpp.o.d"
  "/root/repo/src/mapreduce/profile.cpp" "src/mapreduce/CMakeFiles/vfimr_mapreduce.dir/profile.cpp.o" "gcc" "src/mapreduce/CMakeFiles/vfimr_mapreduce.dir/profile.cpp.o.d"
  "/root/repo/src/mapreduce/scheduler.cpp" "src/mapreduce/CMakeFiles/vfimr_mapreduce.dir/scheduler.cpp.o" "gcc" "src/mapreduce/CMakeFiles/vfimr_mapreduce.dir/scheduler.cpp.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/common/CMakeFiles/vfimr_common.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
