# Empty compiler generated dependencies file for vfimr_mapreduce.
# This may be replaced when dependencies are built.
