file(REMOVE_RECURSE
  "CMakeFiles/vfimr_mapreduce.dir/apps/histogram.cpp.o"
  "CMakeFiles/vfimr_mapreduce.dir/apps/histogram.cpp.o.d"
  "CMakeFiles/vfimr_mapreduce.dir/apps/kmeans.cpp.o"
  "CMakeFiles/vfimr_mapreduce.dir/apps/kmeans.cpp.o.d"
  "CMakeFiles/vfimr_mapreduce.dir/apps/linear_regression.cpp.o"
  "CMakeFiles/vfimr_mapreduce.dir/apps/linear_regression.cpp.o.d"
  "CMakeFiles/vfimr_mapreduce.dir/apps/matrix_multiply.cpp.o"
  "CMakeFiles/vfimr_mapreduce.dir/apps/matrix_multiply.cpp.o.d"
  "CMakeFiles/vfimr_mapreduce.dir/apps/pca.cpp.o"
  "CMakeFiles/vfimr_mapreduce.dir/apps/pca.cpp.o.d"
  "CMakeFiles/vfimr_mapreduce.dir/apps/wordcount.cpp.o"
  "CMakeFiles/vfimr_mapreduce.dir/apps/wordcount.cpp.o.d"
  "CMakeFiles/vfimr_mapreduce.dir/profile.cpp.o"
  "CMakeFiles/vfimr_mapreduce.dir/profile.cpp.o.d"
  "CMakeFiles/vfimr_mapreduce.dir/scheduler.cpp.o"
  "CMakeFiles/vfimr_mapreduce.dir/scheduler.cpp.o.d"
  "libvfimr_mapreduce.a"
  "libvfimr_mapreduce.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/vfimr_mapreduce.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
