file(REMOVE_RECURSE
  "libvfimr_mapreduce.a"
)
