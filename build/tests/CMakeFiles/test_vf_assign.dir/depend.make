# Empty dependencies file for test_vf_assign.
# This may be replaced when dependencies are built.
