file(REMOVE_RECURSE
  "CMakeFiles/test_vf_assign.dir/test_vf_assign.cpp.o"
  "CMakeFiles/test_vf_assign.dir/test_vf_assign.cpp.o.d"
  "test_vf_assign"
  "test_vf_assign.pdb"
  "test_vf_assign[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_vf_assign.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
