# Empty compiler generated dependencies file for test_task_sim.
# This may be replaced when dependencies are built.
