file(REMOVE_RECURSE
  "CMakeFiles/test_task_sim.dir/test_task_sim.cpp.o"
  "CMakeFiles/test_task_sim.dir/test_task_sim.cpp.o.d"
  "test_task_sim"
  "test_task_sim.pdb"
  "test_task_sim[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_task_sim.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
