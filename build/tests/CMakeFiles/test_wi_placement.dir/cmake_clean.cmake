file(REMOVE_RECURSE
  "CMakeFiles/test_wi_placement.dir/test_wi_placement.cpp.o"
  "CMakeFiles/test_wi_placement.dir/test_wi_placement.cpp.o.d"
  "test_wi_placement"
  "test_wi_placement.pdb"
  "test_wi_placement[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_wi_placement.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
