# Empty compiler generated dependencies file for test_wi_placement.
# This may be replaced when dependencies are built.
