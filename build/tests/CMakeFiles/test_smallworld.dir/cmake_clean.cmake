file(REMOVE_RECURSE
  "CMakeFiles/test_smallworld.dir/test_smallworld.cpp.o"
  "CMakeFiles/test_smallworld.dir/test_smallworld.cpp.o.d"
  "test_smallworld"
  "test_smallworld.pdb"
  "test_smallworld[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_smallworld.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
