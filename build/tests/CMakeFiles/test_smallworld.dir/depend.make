# Empty dependencies file for test_smallworld.
# This may be replaced when dependencies are built.
