file(REMOVE_RECURSE
  "CMakeFiles/test_thread_mapping.dir/test_thread_mapping.cpp.o"
  "CMakeFiles/test_thread_mapping.dir/test_thread_mapping.cpp.o.d"
  "test_thread_mapping"
  "test_thread_mapping.pdb"
  "test_thread_mapping[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/test_thread_mapping.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
