# CMake generated Testfile for 
# Source directory: /root/repo/tests
# Build directory: /root/repo/build/tests
# 
# This file includes the relevant testing commands required for 
# testing this directory and lists subdirectories to be tested as well.
include("/root/repo/build/tests/test_rng[1]_include.cmake")
include("/root/repo/build/tests/test_stats[1]_include.cmake")
include("/root/repo/build/tests/test_table[1]_include.cmake")
include("/root/repo/build/tests/test_matrix[1]_include.cmake")
include("/root/repo/build/tests/test_graph[1]_include.cmake")
include("/root/repo/build/tests/test_topology[1]_include.cmake")
include("/root/repo/build/tests/test_routing[1]_include.cmake")
include("/root/repo/build/tests/test_network[1]_include.cmake")
include("/root/repo/build/tests/test_wireless[1]_include.cmake")
include("/root/repo/build/tests/test_traffic[1]_include.cmake")
include("/root/repo/build/tests/test_power[1]_include.cmake")
include("/root/repo/build/tests/test_scheduler[1]_include.cmake")
include("/root/repo/build/tests/test_engine[1]_include.cmake")
include("/root/repo/build/tests/test_apps[1]_include.cmake")
include("/root/repo/build/tests/test_workload[1]_include.cmake")
include("/root/repo/build/tests/test_clustering[1]_include.cmake")
include("/root/repo/build/tests/test_vf_assign[1]_include.cmake")
include("/root/repo/build/tests/test_smallworld[1]_include.cmake")
include("/root/repo/build/tests/test_thread_mapping[1]_include.cmake")
include("/root/repo/build/tests/test_wi_placement[1]_include.cmake")
include("/root/repo/build/tests/test_task_sim[1]_include.cmake")
include("/root/repo/build/tests/test_system_integration[1]_include.cmake")
include("/root/repo/build/tests/test_extensions[1]_include.cmake")
